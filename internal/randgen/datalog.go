package randgen

import (
	"algrec/internal/datalog"
	"algrec/internal/value"
)

// DatalogKind selects the negation discipline of a generated deductive
// program.
type DatalogKind uint8

// The program families, by increasing expressive power (and decreasing
// number of semantics that agree on them — see internal/diffcheck's oracle
// matrix).
const (
	// DlogPositive generates negation-free programs: every semantics in
	// internal/semantics computes the same (minimal) model on them.
	DlogPositive DatalogKind = iota
	// DlogStratified generates programs that are stratifiable by
	// construction: a negated atom's predicate is always an EDB relation or
	// an IDB predicate of a strictly earlier stratum, and positive references
	// never reach back past the head's stratum, so no cycle crosses a
	// negative edge. Stratified, well-founded and valid evaluation all
	// compute the same total model on these.
	DlogStratified
	// DlogFree generates programs with unrestricted (safe) polarity:
	// negation may be recursive, so the valid/well-founded model may be
	// genuinely three-valued and stable models may branch. Only the paired
	// engines for one semantics are comparable.
	DlogFree
)

// String returns the kind's name.
func (k DatalogKind) String() string {
	switch k {
	case DlogPositive:
		return "positive"
	case DlogStratified:
		return "stratified"
	case DlogFree:
		return "free"
	default:
		return "DatalogKind(?)"
	}
}

// pred is a predicate slot of the generated schema.
type pred struct {
	name  string
	arity int
}

// Datalog generates a safe deductive program of the given kind: EDB facts
// over a small integer domain, and rules whose bodies open with positive
// atoms binding every variable, followed by optional comparison literals, an
// optional guarded arithmetic assignment (exercising interpreted functions
// while keeping the active domain finite), and negated atoms per the kind's
// discipline. Safety in the sense of Definition 4.1 holds by construction;
// DlogStratified output additionally satisfies datalog.IsStratified.
func (g *Gen) Datalog(kind DatalogKind) *datalog.Program {
	p := &datalog.Program{}
	edb := []pred{{"d", 1}, {"e", 2}}
	// idb is ordered; DlogStratified treats the index as the stratum.
	idb := []pred{{"p", 1}, {"q", 1}, {"s", 2}}
	nConst := 2 + g.intn(2+g.cfg.Size)

	// EDB facts; occasionally an IDB fact too (translations must carry
	// explicit IDB facts through).
	for i := 0; i < 3+g.intn(3*g.cfg.Size); i++ {
		rel := edb[g.intn(len(edb))]
		if g.chance(8) {
			rel = idb[g.intn(len(idb))]
		}
		args := make([]value.Value, rel.arity)
		for j := range args {
			args[j] = value.Int(int64(g.intn(nConst)))
		}
		p.AddFacts(datalog.Fact{Pred: rel.name, Args: args})
	}

	vars := []datalog.Var{"X", "Y", "Z"}
	for i := 0; i < 2+g.intn(2*g.cfg.Size); i++ {
		hi := g.intn(len(idb))
		head := idb[hi]

		// Predicates a body atom may reference, by polarity and kind.
		var posPool, negPool []pred
		posPool = append(posPool, edb...)
		switch kind {
		case DlogPositive:
			posPool = append(posPool, idb...)
		case DlogStratified:
			// Positive references stay at or below the head's stratum so
			// every cycle lives inside one stratum; negative references stay
			// strictly below.
			posPool = append(posPool, idb[:hi+1]...)
			negPool = append(append(negPool, edb...), idb[:hi]...)
		case DlogFree:
			posPool = append(posPool, idb...)
			negPool = posPool
		}

		var body []datalog.Literal
		bound := map[datalog.Var]bool{}
		var boundList []datalog.Var
		for j := 0; j < 1+g.intn(2); j++ {
			rel := posPool[g.intn(len(posPool))]
			args := make([]datalog.Term, rel.arity)
			for k := range args {
				v := vars[g.intn(len(vars))]
				args[k] = v
				if !bound[v] {
					bound[v] = true
					boundList = append(boundList, v)
				}
			}
			body = append(body, datalog.LitAtom{Atom: datalog.Atom{Pred: rel.name, Args: args}})
		}
		if g.chance(3) {
			v := boundList[g.intn(len(boundList))]
			body = append(body, datalog.Cmp(datalog.CmpOp(g.intn(6)), v, datalog.CInt(int64(g.intn(nConst)))))
		}
		if g.chance(4) {
			// W = plus(V, 1), W < bound: an interpreted-function assignment
			// whose guard keeps grounding finite.
			src := boundList[g.intn(len(boundList))]
			w := datalog.Var("W")
			if !bound[w] {
				body = append(body,
					datalog.Cmp(datalog.OpEq, w, datalog.Apply{Fn: "plus", Args: []datalog.Term{src, datalog.CInt(1)}}),
					datalog.Cmp(datalog.OpLt, w, datalog.CInt(int64(nConst+2))))
				bound[w] = true
				boundList = append(boundList, w)
			}
		}
		for j := g.intn(2); j > 0 && len(negPool) > 0; j-- {
			rel := negPool[g.intn(len(negPool))]
			args := make([]datalog.Term, rel.arity)
			for k := range args {
				args[k] = boundList[g.intn(len(boundList))]
			}
			body = append(body, datalog.LitAtom{Neg: true, Atom: datalog.Atom{Pred: rel.name, Args: args}})
		}
		headArgs := make([]datalog.Term, head.arity)
		for k := range headArgs {
			headArgs[k] = boundList[g.intn(len(boundList))]
		}
		p.Rules = append(p.Rules, datalog.Rule{Head: datalog.Atom{Pred: head.name, Args: headArgs}, Body: body})
	}
	return p
}
