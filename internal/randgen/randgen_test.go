package randgen

import (
	"testing"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/datalog"
	"algrec/internal/datalog/ground"
	"algrec/internal/semantics"
)

// TestDeterminism checks the generator contract: the same (seed, Config)
// reproduces every instance family byte for byte.
func TestDeterminism(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		for _, size := range []int{1, 3, 6} {
			cfg := Config{Size: size}
			a, b := New(seed, cfg), New(seed, cfg)
			ia, ib := a.ExprInstance(), b.ExprInstance()
			if ia.Expr.String() != ib.Expr.String() {
				t.Fatalf("seed %d size %d: expr differs:\n%s\n%s", seed, size, ia.Expr, ib.Expr)
			}
			for name, s := range ia.DB {
				if s.String() != ib.DB[name].String() {
					t.Fatalf("seed %d size %d: db relation %s differs", seed, size, name)
				}
			}
			ca, cb := a.CoreInstance(true), b.CoreInstance(true)
			if ca.Prog.String() != cb.Prog.String() {
				t.Fatalf("seed %d size %d: core program differs", seed, size)
			}
			for _, kind := range []DatalogKind{DlogPositive, DlogStratified, DlogFree} {
				pa, pb := a.Datalog(kind), b.Datalog(kind)
				if pa.String() != pb.String() {
					t.Fatalf("seed %d size %d kind %v: datalog program differs", seed, size, kind)
				}
			}
		}
	}
}

// TestExprInstancesEvaluate checks that generated expressions are
// well-kinded: evaluation either succeeds or hits the work budget, but never
// fails with a kind error.
func TestExprInstancesEvaluate(t *testing.T) {
	budget := algebra.Budget{MaxIFPIters: 500, MaxSetSize: 50_000}
	for seed := int64(0); seed < 300; seed++ {
		g := New(seed, Config{Size: 3})
		inst := g.ExprInstance()
		if _, err := algebra.NewEvaluator(inst.DB, budget).Eval(inst.Expr); err != nil {
			t.Fatalf("seed %d: eval failed: %v\nexpr: %s", seed, err, inst.Expr)
		}
	}
}

// TestIFPExprInstancesHaveIFP checks the IFP family's defining property.
func TestIFPExprInstancesHaveIFP(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		inst := New(seed, Config{Size: 2}).IFPExprInstance()
		if !algebra.HasIFP(inst.Expr) {
			t.Fatalf("seed %d: instance has no IFP: %s", seed, inst.Expr)
		}
	}
}

// TestCoreInstancesValidate checks generated algebra= programs are
// structurally well formed, inline cleanly, and evaluate (or hit the
// budget) under both core semantics.
func TestCoreInstancesValidate(t *testing.T) {
	budget := algebra.Budget{MaxIFPIters: 500, MaxSetSize: 50_000}
	for seed := int64(0); seed < 200; seed++ {
		g := New(seed, Config{Size: 3})
		inst := g.CoreInstance(seed%2 == 0)
		if err := inst.Prog.Validate(); err != nil {
			t.Fatalf("seed %d: invalid program: %v\n%s", seed, err, inst.Prog)
		}
		if _, err := inst.Prog.Inline(); err != nil {
			t.Fatalf("seed %d: inline failed: %v\n%s", seed, err, inst.Prog)
		}
		if _, err := core.EvalValid(inst.Prog, inst.DB, budget); err != nil {
			t.Fatalf("seed %d: valid eval failed: %v\n%s", seed, err, inst.Prog)
		}
		if _, err := core.EvalInflationary(inst.Prog, inst.DB, budget); err != nil {
			t.Fatalf("seed %d: inflationary eval failed: %v\n%s", seed, err, inst.Prog)
		}
	}
}

// TestDatalogInstancesAreSafe checks every generated program passes the
// Definition 4.1 safety check, that DlogPositive output is negation-free,
// and that DlogStratified output stratifies.
func TestDatalogInstancesAreSafe(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		g := New(seed, Config{Size: 3})
		for _, kind := range []DatalogKind{DlogPositive, DlogStratified, DlogFree} {
			p := g.Datalog(kind)
			if err := datalog.CheckProgramSafe(p); err != nil {
				t.Fatalf("seed %d kind %v: unsafe program: %v\n%s", seed, kind, err, p)
			}
			if kind == DlogPositive {
				for _, r := range p.Rules {
					for _, l := range r.Body {
						if la, ok := l.(datalog.LitAtom); ok && la.Neg {
							t.Fatalf("seed %d: positive program contains negation:\n%s", seed, p)
						}
					}
				}
			}
			if kind == DlogStratified && !datalog.IsStratified(p) {
				t.Fatalf("seed %d: DlogStratified program does not stratify:\n%s", seed, p)
			}
		}
	}
}

// TestDatalogInstancesGround checks generated programs ground and evaluate
// within modest budgets — the differential oracles depend on instances being
// cheap enough to run through several pipelines each.
func TestDatalogInstancesGround(t *testing.T) {
	budget := ground.Budget{MaxAtoms: 100_000, MaxRules: 400_000}
	for seed := int64(0); seed < 100; seed++ {
		g := New(seed, Config{Size: 3})
		p := g.Datalog(DlogFree)
		gp, err := ground.Ground(p, budget)
		if err != nil {
			t.Fatalf("seed %d: grounding failed: %v\n%s", seed, err, p)
		}
		semantics.NewEngine(gp).Valid()
	}
}
