package randgen

import (
	"fmt"
	"strings"

	"algrec/internal/datalog"
	"algrec/internal/value"
)

// FactBatch is one step of a generated mutation schedule: the facts to
// delete and the facts to insert, applied deletions-first like
// ivm.View.Apply. A batch may delete facts that are absent and insert facts
// already present — the differential harness wants those no-op paths
// exercised too.
type FactBatch struct {
	Delete []datalog.Fact
	Insert []datalog.Fact
}

// String renders the batch as "-fact ... +fact ..." in schedule order.
func (b FactBatch) String() string {
	var parts []string
	for _, f := range b.Delete {
		parts = append(parts, "-"+f.Key())
	}
	for _, f := range b.Insert {
		parts = append(parts, "+"+f.Key())
	}
	return strings.Join(parts, " ")
}

// RenderSchedule renders a schedule one numbered step per line — the stable
// form used by diffcheck repro dumps.
func RenderSchedule(sched []FactBatch) string {
	var sb strings.Builder
	for i, b := range sched {
		fmt.Fprintf(&sb, "step %d: %s\n", i, b)
	}
	return sb.String()
}

// FactSchedule generates a random insert/delete schedule over the Datalog
// generator's schema: mostly EDB facts (d/1, e/2), occasionally a base fact
// for an IDB predicate (p/1, q/1, s/2) — the incremental engine must treat
// those as database-base membership alongside derived membership. Arguments
// come from the same small integer domain as Datalog, so deletions have a
// real chance of hitting earlier insertions or seed facts. Drawn after
// Datalog on the same Gen it extends the stream without perturbing any
// existing generator (the pin_test corpora are unaffected).
func (g *Gen) FactSchedule() []FactBatch {
	preds := []pred{{"d", 1}, {"e", 2}}
	idb := []pred{{"p", 1}, {"q", 1}, {"s", 2}}
	nConst := 2 + g.intn(2+g.cfg.Size)
	mk := func() datalog.Fact {
		rel := preds[g.intn(len(preds))]
		if g.chance(6) {
			rel = idb[g.intn(len(idb))]
		}
		args := make([]value.Value, rel.arity)
		for j := range args {
			args[j] = value.Int(int64(g.intn(nConst)))
		}
		return datalog.Fact{Pred: rel.name, Args: args}
	}
	sched := make([]FactBatch, 1+g.intn(1+2*g.cfg.Size))
	for i := range sched {
		var b FactBatch
		for j := 0; j < 1+g.intn(3); j++ {
			if g.chance(3) {
				b.Delete = append(b.Delete, mk())
			} else {
				b.Insert = append(b.Insert, mk())
			}
		}
		sched[i] = b
	}
	return sched
}
