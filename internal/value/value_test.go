package value

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randValue builds a random value of bounded depth; it is the shared
// generator for the package's property tests.
func randValue(r *rand.Rand, depth int) Value {
	kinds := 3
	if depth > 0 {
		kinds = 5
	}
	switch r.Intn(kinds) {
	case 0:
		return Bool(r.Intn(2) == 0)
	case 1:
		return Int(r.Intn(20) - 10)
	case 2:
		syms := []string{"a", "b", "c", "d", "hello world", "", "x_1"}
		return String(syms[r.Intn(len(syms))])
	case 3:
		n := r.Intn(3)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randValue(r, depth-1)
		}
		return NewTuple(elems...)
	default:
		n := r.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randValue(r, depth-1)
		}
		return NewSet(elems...)
	}
}

func randSet(r *rand.Rand, n int) Set {
	elems := make([]Value, r.Intn(n+1))
	for i := range elems {
		elems[i] = randValue(r, 2)
	}
	return NewSet(elems...)
}

var quickCfg = &quick.Config{MaxCount: 300}

func TestCompareTotalOrder(t *testing.T) {
	// Antisymmetry and reflexivity.
	prop := func(seedA, seedB int64) bool {
		a := randValue(rand.New(rand.NewSource(seedA)), 3)
		b := randValue(rand.New(rand.NewSource(seedB)), 3)
		if a.Compare(a) != 0 || b.Compare(b) != 0 {
			return false
		}
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitive(t *testing.T) {
	prop := func(s1, s2, s3 int64) bool {
		a := randValue(rand.New(rand.NewSource(s1)), 3)
		b := randValue(rand.New(rand.NewSource(s2)), 3)
		c := randValue(rand.New(rand.NewSource(s3)), 3)
		// sort the three and verify pairwise consistency
		vs := []Value{a, b, c}
		SortValues(vs)
		return vs[0].Compare(vs[1]) <= 0 && vs[1].Compare(vs[2]) <= 0 && vs[0].Compare(vs[2]) <= 0
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestStringInjective(t *testing.T) {
	prop := func(s1, s2 int64) bool {
		a := randValue(rand.New(rand.NewSource(s1)), 3)
		b := randValue(rand.New(rand.NewSource(s2)), 3)
		if Equal(a, b) {
			return a.String() == b.String()
		}
		return a.String() != b.String()
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestStringForms(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{True, "true"},
		{False, "false"},
		{Int(42), "42"},
		{Int(-7), "-7"},
		{String("abc"), "abc"},
		{String("x_1"), "x_1"},
		{String("Hello"), `"Hello"`},
		{String(""), `""`},
		{String("true"), `"true"`},
		{String("1abc"), `"1abc"`},
		{NewTuple(Int(1), String("a")), "(1, a)"},
		{NewSet(), "{}"},
		{NewSet(Int(2), Int(1), Int(2)), "{1, 2}"},
		{NewSet(NewTuple(Int(1), Int(2))), "{(1, 2)}"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSetCanonicalization(t *testing.T) {
	// INS is idempotent and commutative (the two SET(nat) equations).
	a := NewSet(Int(1), Int(2), Int(3))
	b := NewSet(Int(3), Int(3), Int(2), Int(1), Int(2))
	if !Equal(a, b) {
		t.Errorf("canonicalization failed: %v vs %v", a, b)
	}
	if got := EmptySet.Insert(Int(5)).Insert(Int(5)).Insert(Int(4)); !Equal(got, NewSet(Int(4), Int(5))) {
		t.Errorf("Insert chain = %v", got)
	}
}

func TestSetMembership(t *testing.T) {
	s := NewSet(Int(1), String("a"), NewTuple(Int(1), Int(2)))
	for _, v := range s.Elems() {
		if !s.Has(v) {
			t.Errorf("Has(%v) = false, want true", v)
		}
	}
	for _, v := range []Value{Int(2), String("b"), NewTuple(Int(2), Int(1)), True} {
		if s.Has(v) {
			t.Errorf("Has(%v) = true, want false", v)
		}
	}
	if EmptySet.Has(Int(0)) {
		t.Error("EmptySet.Has(0) = true")
	}
}

func TestSetAlgebraLaws(t *testing.T) {
	prop := func(s1, s2, s3 int64) bool {
		r := rand.New(rand.NewSource(s1))
		a := randSet(r, 6)
		b := randSet(rand.New(rand.NewSource(s2)), 6)
		c := randSet(rand.New(rand.NewSource(s3)), 6)
		// commutativity, associativity, distribution, De Morgan-ish diff laws
		if !Equal(a.Union(b), b.Union(a)) {
			return false
		}
		if !Equal(a.Union(b.Union(c)), a.Union(b).Union(c)) {
			return false
		}
		if !Equal(a.Intersect(b), b.Intersect(a)) {
			return false
		}
		// the paper's Example 3: x ∩ y = x − (x − y)
		if !Equal(a.Intersect(b), a.Diff(a.Diff(b))) {
			return false
		}
		// xor definition: (x − y) ∪ (y − x)
		xor := a.Diff(b).Union(b.Diff(a))
		if !Equal(xor, a.Union(b).Diff(a.Intersect(b))) {
			return false
		}
		// diff distributes over union on the left argument's partition
		if !Equal(a.Diff(b.Union(c)), a.Diff(b).Diff(c)) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestSetUnionDiffMembership(t *testing.T) {
	prop := func(s1, s2, s3 int64) bool {
		a := randSet(rand.New(rand.NewSource(s1)), 8)
		b := randSet(rand.New(rand.NewSource(s2)), 8)
		v := randValue(rand.New(rand.NewSource(s3)), 2)
		if a.Union(b).Has(v) != (a.Has(v) || b.Has(v)) {
			return false
		}
		if a.Diff(b).Has(v) != (a.Has(v) && !b.Has(v)) {
			return false
		}
		if a.Intersect(b).Has(v) != (a.Has(v) && b.Has(v)) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestProduct(t *testing.T) {
	a := NewSet(Int(1), Int(2))
	b := NewSet(String("x"), String("y"))
	p := a.Product(b)
	if p.Len() != 4 {
		t.Fatalf("product size = %d, want 4", p.Len())
	}
	if !p.Has(Pair(Int(1), String("x"))) || !p.Has(Pair(Int(2), String("y"))) {
		t.Errorf("product missing pairs: %v", p)
	}
	if !EmptySet.Product(b).IsEmpty() || !a.Product(EmptySet).IsEmpty() {
		t.Error("product with empty set should be empty")
	}
	// product emits canonical order: verify against NewSet rebuild
	rebuilt := NewSet(p.Elems()...)
	if !Equal(p, rebuilt) {
		t.Errorf("product not canonical: %v vs %v", p, rebuilt)
	}
}

func TestProductCardinality(t *testing.T) {
	prop := func(s1, s2 int64) bool {
		a := randSet(rand.New(rand.NewSource(s1)), 6)
		b := randSet(rand.New(rand.NewSource(s2)), 6)
		return a.Product(b).Len() == a.Len()*b.Len()
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestSubset(t *testing.T) {
	a := NewSet(Int(1), Int(2))
	b := NewSet(Int(1), Int(2), Int(3))
	if !a.Subset(b) || b.Subset(a) {
		t.Error("subset relation wrong")
	}
	if !EmptySet.Subset(a) || !a.Subset(a) {
		t.Error("trivial subset cases wrong")
	}
	prop := func(s1, s2 int64) bool {
		x := randSet(rand.New(rand.NewSource(s1)), 8)
		y := randSet(rand.New(rand.NewSource(s2)), 8)
		return x.Subset(y) == x.Diff(y).IsEmpty()
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestMapSelect(t *testing.T) {
	s := NewSet(Int(1), Int(2), Int(3), Int(4))
	double, err := s.Map(func(v Value) (Value, error) { return Int(v.(Int) * 2), nil })
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(double, NewSet(Int(2), Int(4), Int(6), Int(8))) {
		t.Errorf("Map double = %v", double)
	}
	even, err := s.Select(func(v Value) (bool, error) { return v.(Int)%2 == 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(even, NewSet(Int(2), Int(4))) {
		t.Errorf("Select even = %v", even)
	}
	// Map may collapse elements
	collapsed, err := s.Map(func(Value) (Value, error) { return Int(0), nil })
	if err != nil {
		t.Fatal(err)
	}
	if collapsed.Len() != 1 {
		t.Errorf("collapsing map produced %v", collapsed)
	}
}

func TestNestedSets(t *testing.T) {
	inner1 := NewSet(Int(1))
	inner2 := NewSet(Int(1), Int(2))
	outer := NewSet(inner1, inner2, inner1)
	if outer.Len() != 2 {
		t.Fatalf("nested set size = %d, want 2", outer.Len())
	}
	if !outer.Has(NewSet(Int(1))) {
		t.Error("nested membership by structural equality failed")
	}
}

func TestKeyMatchesString(t *testing.T) {
	prop := func(seed int64) bool {
		v := randValue(rand.New(rand.NewSource(seed)), 3)
		return Key(v) == v.String()
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{KindBool: "bool", KindInt: "int", KindString: "string", KindTuple: "tuple", KindSet: "set"}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), w)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind string = %q", Kind(99).String())
	}
}

func TestTupleAccessors(t *testing.T) {
	tp := NewTuple(Int(1), String("a"))
	if tp.Len() != 2 || !Equal(tp.At(0), Int(1)) || !Equal(tp.At(1), String("a")) {
		t.Errorf("tuple accessors wrong: %v", tp)
	}
	es := tp.Elems()
	es[0] = Int(99) // must not alias internal storage
	if !Equal(tp.At(0), Int(1)) {
		t.Error("Elems aliases internal storage")
	}
}
