package value

import (
	"sort"
	"strings"
)

// Set is a finite set of values in canonical form: the elements are sorted by
// the total order on values and contain no duplicates. The zero Set is the
// empty set (the algebra's EMPTY constant).
type Set struct {
	elems []Value // sorted, deduplicated; never mutated after construction
	c     *vcache // shared by copies; nil for the zero Set
}

// EmptySet is the empty set.
var EmptySet = Set{}

// Kind implements Value.
func (Set) Kind() Kind { return KindSet }

// NewSet returns the set of the given elements, canonicalizing order and
// duplicates (so INS is idempotent and commutative by construction, the two
// SET(nat) equations of the paper's Section 2.1).
func NewSet(elems ...Value) Set {
	if len(elems) == 0 {
		return Set{}
	}
	cp := make([]Value, len(elems))
	copy(cp, elems)
	SortValues(cp)
	out := cp[:1]
	for _, v := range cp[1:] {
		if v.Compare(out[len(out)-1]) != 0 {
			out = append(out, v)
		}
	}
	return setFromSorted(out)
}

// setFromSorted wraps an already-sorted, already-deduplicated slice without
// copying. Callers must not retain the slice.
func setFromSorted(elems []Value) Set { return Set{elems: elems, c: &vcache{}} }

// Len returns the number of elements.
func (s Set) Len() int { return len(s.elems) }

// At returns the i-th element in sorted order, 0-based, without copying the
// element slice. It panics if i is out of range.
func (s Set) At(i int) Value { return s.elems[i] }

// IsEmpty reports whether the set has no elements.
func (s Set) IsEmpty() bool { return len(s.elems) == 0 }

// Elems returns a copy of the elements in sorted order.
func (s Set) Elems() []Value {
	cp := make([]Value, len(s.elems))
	copy(cp, s.elems)
	return cp
}

// Has reports whether v is a member of s (the paper's MEM, on finite sets).
func (s Set) Has(v Value) bool {
	lo, hi := 0, len(s.elems)
	for lo < hi {
		mid := (lo + hi) / 2
		c := s.elems[mid].Compare(v)
		switch {
		case c < 0:
			lo = mid + 1
		case c > 0:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// Insert returns s ∪ {v} (the paper's INS).
func (s Set) Insert(v Value) Set {
	at := sort.Search(len(s.elems), func(i int) bool { return s.elems[i].Compare(v) >= 0 })
	if at < len(s.elems) && s.elems[at].Compare(v) == 0 {
		return s
	}
	out := make([]Value, len(s.elems)+1)
	copy(out, s.elems[:at])
	out[at] = v
	copy(out[at+1:], s.elems[at:])
	return setFromSorted(out)
}

// gallopFactor is the size ratio beyond which the lopsided set operations
// switch from the element-wise merge (one Compare per element of the larger
// set) to binary-searching the larger set and copying it in slabs. Fixpoint
// accumulators make this the hot shape: the semi-naive delta engine unions a
// small per-round delta into a large accumulator every round.
const gallopFactor = 8

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	if s.IsEmpty() {
		return t
	}
	if t.IsEmpty() {
		return s
	}
	if len(s.elems) >= gallopFactor*len(t.elems) {
		return unionGallop(s.elems, t.elems)
	}
	if len(t.elems) >= gallopFactor*len(s.elems) {
		return unionGallop(t.elems, s.elems)
	}
	out := make([]Value, 0, len(s.elems)+len(t.elems))
	i, j := 0, 0
	for i < len(s.elems) && j < len(t.elems) {
		c := s.elems[i].Compare(t.elems[j])
		switch {
		case c < 0:
			out = append(out, s.elems[i])
			i++
		case c > 0:
			out = append(out, t.elems[j])
			j++
		default:
			out = append(out, s.elems[i])
			i++
			j++
		}
	}
	out = append(out, s.elems[i:]...)
	out = append(out, t.elems[j:]...)
	return setFromSorted(out)
}

// unionGallop merges the smaller sorted slice into the larger one: for each
// element of small, binary-search its position in the unconsumed tail of big
// and copy the preceding slab wholesale. Cost is |small| searches of
// O(log |big|) Compares plus one pass of copying, instead of a Compare per
// element of big.
func unionGallop(big, small []Value) Set {
	out := make([]Value, 0, len(big)+len(small))
	lo := 0
	for _, v := range small {
		at := lo + sort.Search(len(big)-lo, func(i int) bool { return big[lo+i].Compare(v) >= 0 })
		out = append(out, big[lo:at]...)
		lo = at
		if lo < len(big) && big[lo].Compare(v) == 0 {
			continue // duplicate: big's copy lands with the next slab
		}
		out = append(out, v)
	}
	out = append(out, big[lo:]...)
	return setFromSorted(out)
}

// Diff returns s − t (the algebra's subtraction).
func (s Set) Diff(t Set) Set {
	if s.IsEmpty() || t.IsEmpty() {
		return s
	}
	if len(t.elems) >= gallopFactor*len(s.elems) {
		// Small minus large: membership-test each element of s instead of
		// scanning t (the semi-naive delta engine's Δ − accumulator shape).
		out := make([]Value, 0, len(s.elems))
		for _, e := range s.elems {
			if !t.Has(e) {
				out = append(out, e)
			}
		}
		return setFromSorted(out)
	}
	out := make([]Value, 0, len(s.elems))
	i, j := 0, 0
	for i < len(s.elems) {
		if j >= len(t.elems) {
			out = append(out, s.elems[i:]...)
			break
		}
		c := s.elems[i].Compare(t.elems[j])
		switch {
		case c < 0:
			out = append(out, s.elems[i])
			i++
		case c > 0:
			j++
		default:
			i++
			j++
		}
	}
	return setFromSorted(out)
}

// Intersect returns s ∩ t. Intersection is not a primitive of the algebra;
// the paper defines it by the algebra= equation x ∩ y = x − (x − y)
// (Example 3), and a test checks this implementation against that equation.
func (s Set) Intersect(t Set) Set {
	out := make([]Value, 0)
	i, j := 0, 0
	for i < len(s.elems) && j < len(t.elems) {
		c := s.elems[i].Compare(t.elems[j])
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			out = append(out, s.elems[i])
			i++
			j++
		}
	}
	return setFromSorted(out)
}

// Product returns the cartesian product s × t: the set of pairs (a, b) with
// a ∈ s and b ∈ t.
func (s Set) Product(t Set) Set {
	out := make([]Value, 0, len(s.elems)*len(t.elems))
	for _, a := range s.elems {
		for _, b := range t.elems {
			out = append(out, tupleFromOwned([]Value{a, b}))
		}
	}
	// Pairs of sorted factors are produced in sorted order already, but we
	// defensively canonicalize: tuple order is lexicographic, so the nested
	// loop does emit sorted output; NewSet would re-sort needlessly.
	return setFromSorted(out)
}

// Subset reports whether every element of s is in t.
func (s Set) Subset(t Set) bool {
	if len(s.elems) > len(t.elems) {
		return false
	}
	i, j := 0, 0
	for i < len(s.elems) && j < len(t.elems) {
		c := s.elems[i].Compare(t.elems[j])
		switch {
		case c < 0:
			return false
		case c > 0:
			j++
		default:
			i++
			j++
		}
	}
	return i == len(s.elems)
}

// Compare implements Value.
func (s Set) Compare(other Value) int {
	if c := compareKinds(s, other); c != 0 {
		return c
	}
	o := other.(Set)
	if cachedEqual(s.c, o.c) {
		return 0
	}
	return compareSlices(s.elems, o.elems)
}

// String implements Value. The encoding is computed once per set and cached;
// copies share the cache.
func (s Set) String() string {
	if s.c != nil {
		if cached := s.c.str.Load(); cached != nil {
			return *cached
		}
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, e := range s.elems {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(e.String())
	}
	sb.WriteByte('}')
	out := sb.String()
	if s.c != nil {
		s.c.str.Store(&out)
	}
	return out
}

// Map returns the set {f(x) : x ∈ s}, the semantic core of the algebra's
// MAP_f operator. If f returns an error for any element, Map returns it.
func (s Set) Map(f func(Value) (Value, error)) (Set, error) {
	out := make([]Value, 0, len(s.elems))
	for _, e := range s.elems {
		v, err := f(e)
		if err != nil {
			return Set{}, err
		}
		out = append(out, v)
	}
	return NewSet(out...), nil
}

// Select returns the set {x ∈ s : pred(x)}, the semantic core of the
// algebra's σ operator.
func (s Set) Select(pred func(Value) (bool, error)) (Set, error) {
	out := make([]Value, 0, len(s.elems))
	for _, e := range s.elems {
		ok, err := pred(e)
		if err != nil {
			return Set{}, err
		}
		if ok {
			out = append(out, e)
		}
	}
	return setFromSorted(out), nil
}
