// Package value implements the complex-object data model shared by every
// language in this repository: the algebra, algebra=, and the deductive
// language all manipulate the same universe of values.
//
// A Value is a boolean, a 64-bit integer, a string (which doubles as an
// uninterpreted atom/symbol), a tuple of values, or a finite set of values.
// Values are immutable once constructed. Sets are kept in a canonical sorted,
// duplicate-free form, so structural equality coincides with set equality and
// String() is an injective encoding usable as a map key.
//
// The total order provided by Compare is arbitrary but fixed: values of
// different kinds are ordered by kind, and values of the same kind are ordered
// by their natural content order. The order exists to canonicalize sets and to
// make results deterministic; no language construct exposes it except the
// explicit comparison predicates on integers and strings.
package value

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// interning is the process-wide switch for the hash-consed fast paths: the
// cached-intern-id equality shortcut in Compare and every caller that picks
// between an intern.ID-keyed and a string-keyed representation (the grounder's
// fact store, the algebra hash join). It defaults to on; cmd/bench -nointern
// and the diffcheck intern oracles turn it off to pin bit-for-bit equivalence
// of the two representations. The switch changes cost only, never results.
var interning atomic.Bool

func init() { interning.Store(true) }

// InterningEnabled reports whether the hash-consed fast paths are enabled.
func InterningEnabled() bool { return interning.Load() }

// SetInterning enables or disables the hash-consed fast paths process-wide
// and returns the previous setting (so ablations can restore it).
func SetInterning(on bool) (was bool) { return interning.Swap(on) }

// vcache is the mutable cache cell shared by all copies of one Tuple or Set:
// the canonical String() encoding, computed at most once, and the value's
// process-global intern id (0 while unassigned — intern ids start at 1).
// Both fields are monotonic (unset → set-once), so racing writers agree and
// atomic access keeps readers race-clean.
type vcache struct {
	str atomic.Pointer[string]
	id  atomic.Uint32
}

// cachedEqual reports whether two cache cells prove their owners equal: the
// same cell (copies of one value), or both carrying the same nonzero
// process-global intern id. It never proves inequality — ids may simply not
// be assigned yet — so callers fall through to the structural comparison.
func cachedEqual(a, b *vcache) bool {
	if a == nil || b == nil {
		return false
	}
	if a == b {
		return true
	}
	if !interning.Load() {
		return false
	}
	ida := a.id.Load()
	return ida != 0 && ida == b.id.Load()
}

// InternID returns the process-global intern id cached on v, or 0 when none
// is assigned (scalars and the zero Set have no cache cell). It is the seam
// internal/value/intern uses to make re-interning a value O(1).
func InternID(v Value) uint32 {
	switch vv := v.(type) {
	case Tuple:
		if vv.c != nil {
			return vv.c.id.Load()
		}
	case Set:
		if vv.c != nil {
			return vv.c.id.Load()
		}
	}
	return 0
}

// CacheInternID records the process-global intern id on v's cache cell. It
// is a no-op for scalar values and the zero Set, which have no cell. Only
// the process-global interner may call it — private interners caching their
// ids here would corrupt every other user of the cell.
func CacheInternID(v Value, id uint32) {
	switch vv := v.(type) {
	case Tuple:
		if vv.c != nil {
			vv.c.id.Store(id)
		}
	case Set:
		if vv.c != nil {
			vv.c.id.Store(id)
		}
	}
}

// Kind identifies the variant of a Value.
type Kind uint8

// The value kinds, in comparison order.
const (
	KindBool Kind = iota
	KindInt
	KindString
	KindTuple
	KindSet
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindTuple:
		return "tuple"
	case KindSet:
		return "set"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a complex-object value. It is a sealed interface: the only
// implementations are Bool, Int, String, Tuple and Set.
type Value interface {
	// Kind reports the variant.
	Kind() Kind
	// Compare returns -1, 0 or +1 as the receiver sorts before, equal to,
	// or after other in the fixed total order on values.
	Compare(other Value) int
	// String returns a canonical, injective textual encoding.
	String() string

	isValue()
}

// Bool is a boolean value. The paper treats TRUE and FALSE as ordinary
// values of the specification (not meta-level truth), which is exactly why
// negation is needed to define MEM totally; Bool plays that role here.
type Bool bool

// Int is a 64-bit integer value.
type Int int64

// String is a string value; lowercase identifiers in program text (symbols
// such as `a` or `paris`) are represented as String values.
type String string

// Tuple is an ordered, fixed-length sequence of values.
type Tuple struct {
	elems []Value
	c     *vcache // shared by copies; nil only for the zero Tuple
}

func (Bool) isValue()   {}
func (Int) isValue()    {}
func (String) isValue() {}
func (Tuple) isValue()  {}
func (Set) isValue()    {}

// Kind implements Value.
func (Bool) Kind() Kind { return KindBool }

// Kind implements Value.
func (Int) Kind() Kind { return KindInt }

// Kind implements Value.
func (String) Kind() Kind { return KindString }

// Kind implements Value.
func (Tuple) Kind() Kind { return KindTuple }

// True and False are the boolean constants.
var (
	True  = Bool(true)
	False = Bool(false)
)

// NewTuple returns the tuple of the given elements. The slice is copied.
func NewTuple(elems ...Value) Tuple {
	cp := make([]Value, len(elems))
	copy(cp, elems)
	return Tuple{elems: cp, c: &vcache{}}
}

// tupleFromOwned wraps a slice the caller promises not to retain.
func tupleFromOwned(elems []Value) Tuple { return Tuple{elems: elems, c: &vcache{}} }

// Pair returns the 2-tuple [a, b], the element shape produced by the
// algebra's cartesian product.
func Pair(a, b Value) Tuple { return NewTuple(a, b) }

// Len returns the number of elements of the tuple.
func (t Tuple) Len() int { return len(t.elems) }

// At returns the i-th element, 0-based. It panics if i is out of range.
func (t Tuple) At(i int) Value { return t.elems[i] }

// Elems returns a copy of the tuple's elements.
func (t Tuple) Elems() []Value {
	cp := make([]Value, len(t.elems))
	copy(cp, t.elems)
	return cp
}

// Compare implements Value.
func (b Bool) Compare(other Value) int {
	if c := compareKinds(b, other); c != 0 {
		return c
	}
	o := other.(Bool)
	switch {
	case b == o:
		return 0
	case !bool(b): // false < true
		return -1
	default:
		return 1
	}
}

// Compare implements Value.
func (i Int) Compare(other Value) int {
	if c := compareKinds(i, other); c != 0 {
		return c
	}
	o := other.(Int)
	switch {
	case i < o:
		return -1
	case i > o:
		return 1
	default:
		return 0
	}
}

// Compare implements Value.
func (s String) Compare(other Value) int {
	if c := compareKinds(s, other); c != 0 {
		return c
	}
	return strings.Compare(string(s), string(other.(String)))
}

// Compare implements Value.
func (t Tuple) Compare(other Value) int {
	if c := compareKinds(t, other); c != 0 {
		return c
	}
	o := other.(Tuple)
	if cachedEqual(t.c, o.c) {
		return 0
	}
	return compareSlices(t.elems, o.elems)
}

func compareKinds(a, b Value) int {
	ka, kb := a.Kind(), b.Kind()
	switch {
	case ka < kb:
		return -1
	case ka > kb:
		return 1
	default:
		return 0
	}
}

func compareSlices(a, b []Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// Equal reports whether a and b are the same value.
func Equal(a, b Value) bool { return a.Compare(b) == 0 }

// String implements Value.
func (b Bool) String() string {
	if b {
		return "true"
	}
	return "false"
}

// String implements Value.
func (i Int) String() string { return strconv.FormatInt(int64(i), 10) }

// String implements Value. Symbols made of lowercase letters, digits and
// underscores print bare; anything else prints quoted, keeping the encoding
// injective.
func (s String) String() string {
	if isBareSymbol(string(s)) {
		return string(s)
	}
	return strconv.Quote(string(s))
}

func isBareSymbol(s string) bool {
	if s == "" || s == "true" || s == "false" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
		case r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// String implements Value. The encoding is computed once per tuple and
// cached; copies share the cache.
func (t Tuple) String() string {
	if t.c != nil {
		if s := t.c.str.Load(); s != nil {
			return *s
		}
	}
	var sb strings.Builder
	sb.WriteByte('(')
	for i, e := range t.elems {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(e.String())
	}
	sb.WriteByte(')')
	s := sb.String()
	if t.c != nil {
		t.c.str.Store(&s)
	}
	return s
}

// Key returns the canonical map key for v. It is v.String(); the alias exists
// to make call sites that use values as map keys self-describing.
func Key(v Value) string { return v.String() }

// SortValues sorts vs in place by the total order on values.
func SortValues(vs []Value) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].Compare(vs[j]) < 0 })
}
