package value

import "testing"

// TestStringCachedNoRealloc is the allocation regression gate for the cached
// canonical encodings: the first String() call may build the string, every
// later call (on the value or any copy of it) must allocate nothing.
func TestStringCachedNoRealloc(t *testing.T) {
	deep := NewSet(
		NewTuple(Int(1), NewSet(String("a"), String("b"))),
		NewTuple(Int(2), NewSet(String("c"))),
	)
	tup := NewTuple(Int(7), deep)
	_ = tup.String() // warm the caches, bottom-up

	if allocs := testing.AllocsPerRun(100, func() { _ = tup.String() }); allocs != 0 {
		t.Errorf("cached Tuple.String allocates %v per call, want 0", allocs)
	}
	cp := tup // a copy shares the cache cell
	if allocs := testing.AllocsPerRun(100, func() { _ = cp.String() }); allocs != 0 {
		t.Errorf("copy's String allocates %v per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = deep.String() }); allocs != 0 {
		t.Errorf("cached Set.String allocates %v per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = Key(tup) }); allocs != 0 {
		t.Errorf("Key on a warmed value allocates %v per call, want 0", allocs)
	}
}

// TestSetBuilderCanonicalizes checks SetBuilder against NewSet on the same
// element stream, duplicates included, and that building is single-pass (no
// per-Add reallocation beyond the backing array growth).
func TestSetBuilderCanonicalizes(t *testing.T) {
	elems := []Value{Int(3), Int(1), Int(3), String("z"), Int(1), True}
	b := NewSetBuilder(len(elems))
	for _, e := range elems {
		b.Add(e)
	}
	got := b.Set()
	want := NewSet(elems...)
	if !Equal(got, want) {
		t.Fatalf("SetBuilder.Set() = %v, want %v", got, want)
	}

	var zero SetBuilder
	if s := zero.Set(); !s.IsEmpty() {
		t.Errorf("zero builder's Set() = %v, want empty", s)
	}

	defer func() {
		if recover() == nil {
			t.Error("Add after Set did not panic")
		}
	}()
	b.Add(Int(9))
}

// TestSetBuilderAllocs pins the build cost: with capacity preallocated, a
// build is the canonicalization only — at most the element copies already
// counted, never one allocation per Add like repeated Insert.
func TestSetBuilderAllocs(t *testing.T) {
	const n = 64
	allocs := testing.AllocsPerRun(20, func() {
		b := NewSetBuilder(n)
		for i := 0; i < n; i++ {
			b.Add(Int(int64(i % 16)))
		}
		_ = b.Set()
	})
	// One builder, one backing array, one vcache for the result — plus a
	// few words of sort scratch. Repeated Insert would be ~n allocations.
	if allocs > 8 {
		t.Errorf("SetBuilder build of %d elements allocates %v, want <= 8", n, allocs)
	}
}
