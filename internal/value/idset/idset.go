// Package idset implements finite sets of interned value IDs: the ID-native
// counterpart of value.Set used by the fixpoint engines' delta rounds.
//
// A Set is a sorted, duplicate-free []intern.ID. Because the interner is
// append-only and IDs are canonical (equal values have equal IDs), sorting by
// the *numeric* ID order gives a canonical form for set operations — union,
// difference, intersection and subset are integer merges, with the same
// galloping strategy as value.Set but one uint32 comparison per step instead
// of a structural Compare. The numeric order is NOT the value order, so a Set
// converts back to value space only at output boundaries, through
// Materialize (lazily, once per Set built by the allocating constructors).
//
// Steady-state fixpoint rounds go through a Scratch: a small free list of
// recycled backing slices that makes the per-round union/diff pair
// allocation-free once warm. Scratch-built Sets carry no materialization
// cell (allocating one would defeat the point); materializing one computes
// directly. The engines materialize only the final accumulator, exactly once.
package idset

import (
	"slices"
	"sort"
	"sync"

	"algrec/internal/value"
	"algrec/internal/value/intern"
)

// Set is a finite set of interned IDs in canonical form: sorted ascending by
// numeric ID, no duplicates. The zero Set is empty.
type Set struct {
	ids []intern.ID // sorted, deduplicated; never mutated after construction
	c   *cell       // lazy value-space materialization; nil for scratch sets
}

// cell caches the value-space materialization of a Set, computed at most
// once (mirroring the lazy Fact materialization of the interned grounder).
type cell struct {
	once sync.Once
	vs   value.Set
}

// Empty is the empty ID set.
var Empty = Set{}

// FromIDs returns the set of the given IDs, canonicalizing order and
// duplicates. The input slice is not retained.
func FromIDs(ids []intern.ID) Set {
	if len(ids) == 0 {
		return Set{}
	}
	cp := make([]intern.ID, len(ids))
	copy(cp, ids)
	return fromUnsorted(cp)
}

// fromUnsorted canonicalizes ids in place and wraps it. The caller must not
// retain the slice.
func fromUnsorted(ids []intern.ID) Set {
	if len(ids) == 0 {
		return Set{}
	}
	slices.Sort(ids)
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return Set{ids: out, c: &cell{}}
}

// fromSorted wraps an already-canonical slice without copying.
func fromSorted(ids []intern.ID) Set {
	if len(ids) == 0 {
		return Set{}
	}
	return Set{ids: ids, c: &cell{}}
}

// FromValueSet interns every element of s and returns the resulting ID set.
// With the process-global interner this is O(1) per already-interned element
// (a cache-cell load); the ID count always equals s.Len() because interning
// is injective on distinct values.
func FromValueSet(in *intern.Interner, s value.Set) Set {
	if s.IsEmpty() {
		return Set{}
	}
	ids := make([]intern.ID, s.Len())
	for i := 0; i < s.Len(); i++ {
		ids[i] = in.Intern(s.At(i))
	}
	return fromUnsorted(ids)
}

// Len returns the number of elements.
func (s Set) Len() int { return len(s.ids) }

// IsEmpty reports whether the set has no elements.
func (s Set) IsEmpty() bool { return len(s.ids) == 0 }

// At returns the i-th ID in ascending numeric order. It panics if i is out
// of range.
func (s Set) At(i int) intern.ID { return s.ids[i] }

// IDs returns a copy of the IDs in ascending numeric order.
func (s Set) IDs() []intern.ID {
	cp := make([]intern.ID, len(s.ids))
	copy(cp, s.ids)
	return cp
}

// Has reports whether id is a member of s.
func (s Set) Has(id intern.ID) bool {
	lo, hi := 0, len(s.ids)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case s.ids[mid] < id:
			lo = mid + 1
		case s.ids[mid] > id:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// Equal reports whether s and t contain the same IDs. Canonical form makes
// this a single slice comparison.
func (s Set) Equal(t Set) bool {
	if len(s.ids) != len(t.ids) {
		return false
	}
	for i, id := range s.ids {
		if id != t.ids[i] {
			return false
		}
	}
	return true
}

// gallopFactor is the size ratio beyond which the lopsided operations switch
// from the element-wise merge to binary-searching the larger operand — the
// same crossover value.Set uses, because the shapes are the same: a delta
// engine unions a small per-round delta into a large accumulator.
const gallopFactor = 8

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	if s.IsEmpty() {
		return t
	}
	if t.IsEmpty() {
		return s
	}
	return fromSorted(unionInto(nil, s.ids, t.ids))
}

// Diff returns s − t.
func (s Set) Diff(t Set) Set {
	if s.IsEmpty() || t.IsEmpty() {
		return s
	}
	return fromSorted(diffInto(nil, s.ids, t.ids))
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	if s.IsEmpty() || t.IsEmpty() {
		return Set{}
	}
	return fromSorted(intersectInto(nil, s.ids, t.ids))
}

// Subset reports whether every element of s is in t.
func (s Set) Subset(t Set) bool {
	if len(s.ids) > len(t.ids) {
		return false
	}
	if len(t.ids) >= gallopFactor*len(s.ids) {
		for _, id := range s.ids {
			if !t.Has(id) {
				return false
			}
		}
		return true
	}
	i, j := 0, 0
	for i < len(s.ids) && j < len(t.ids) {
		switch {
		case s.ids[i] < t.ids[j]:
			return false
		case s.ids[i] > t.ids[j]:
			j++
		default:
			i++
			j++
		}
	}
	return i == len(s.ids)
}

// Materialize converts the set back to value space: look up every ID and
// re-sort by the value order (numeric ID order and value order disagree in
// general). Sets built by the allocating constructors cache the result in a
// sync.Once cell shared by copies; scratch-built sets compute it directly.
func (s Set) Materialize(in *intern.Interner) value.Set {
	if len(s.ids) == 0 {
		return value.EmptySet
	}
	if s.c == nil {
		return s.materialize(in)
	}
	s.c.once.Do(func() { s.c.vs = s.materialize(in) })
	return s.c.vs
}

func (s Set) materialize(in *intern.Interner) value.Set {
	b := value.NewSetBuilder(len(s.ids))
	for _, id := range s.ids {
		b.Add(in.Lookup(id))
	}
	return b.Set()
}

// unionInto merges two canonical slices into dst (grown as needed, may be
// nil), galloping when one side dominates. dst must not alias a or b.
func unionInto(dst []intern.ID, a, b []intern.ID) []intern.ID {
	if len(a) >= gallopFactor*len(b) {
		return unionGallop(dst, a, b)
	}
	if len(b) >= gallopFactor*len(a) {
		return unionGallop(dst, b, a)
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// unionGallop merges small into big: for each element of small, binary-search
// its position in big's unconsumed tail and copy the preceding slab wholesale.
func unionGallop(dst []intern.ID, big, small []intern.ID) []intern.ID {
	lo := 0
	for _, id := range small {
		at := lo + sort.Search(len(big)-lo, func(i int) bool { return big[lo+i] >= id })
		dst = append(dst, big[lo:at]...)
		lo = at
		if lo < len(big) && big[lo] == id {
			continue // duplicate: big's copy lands with the next slab
		}
		dst = append(dst, id)
	}
	return append(dst, big[lo:]...)
}

// diffInto appends a − b to dst. When b dominates (the delta-minus-
// accumulator shape), each element of a is membership-tested against b
// instead of scanning b.
func diffInto(dst []intern.ID, a, b []intern.ID) []intern.ID {
	if len(b) >= gallopFactor*len(a) {
		for _, id := range a {
			at := sort.Search(len(b), func(i int) bool { return b[i] >= id })
			if at >= len(b) || b[at] != id {
				dst = append(dst, id)
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) {
		if j >= len(b) {
			return append(dst, a[i:]...)
		}
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
	}
	return dst
}

// intersectInto appends a ∩ b to dst, galloping over the larger side.
func intersectInto(dst []intern.ID, a, b []intern.ID) []intern.ID {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) >= gallopFactor*len(a) {
		lo := 0
		for _, id := range a {
			at := lo + sort.Search(len(b)-lo, func(i int) bool { return b[lo+i] >= id })
			lo = at
			if lo < len(b) && b[lo] == id {
				dst = append(dst, id)
				lo++
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}
