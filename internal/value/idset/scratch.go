package idset

import (
	"slices"

	"algrec/internal/value/intern"
)

// Scratch recycles Set backing slices across fixpoint rounds. A delta round
// produces three transient sets — the body's output, the new accumulator and
// the new delta — whose predecessors from the previous round are dead the
// moment the round commits; Release returns their buffers to a small free
// list so the next round's Union/Diff/Build calls allocate nothing once the
// buffers have grown to the workload's steady-state sizes.
//
// Scratch-built Sets carry no materialization cell and alias pool-owned
// memory: the caller owns their lifetime and must Release exactly the Sets
// nothing else references. A Scratch is not safe for concurrent use; the
// parallel core rounds give each worker its own.
type Scratch struct {
	free [][]intern.ID
}

// take returns a zero-length buffer with at least the given capacity,
// preferring the largest pooled one.
func (sc *Scratch) take(capHint int) []intern.ID {
	if n := len(sc.free); n > 0 {
		buf := sc.free[n-1]
		sc.free = sc.free[:n-1]
		// A too-small buffer grows inside the kernels' appends; Release gets
		// the grown slice back, so the pool converges to steady-state sizes.
		return buf[:0]
	}
	return make([]intern.ID, 0, capHint)
}

// Release returns s's backing buffer to the pool. The caller asserts that no
// other Set aliases it; releasing a Set that is still referenced corrupts
// later rounds. Releasing the zero Set is a no-op.
func (sc *Scratch) Release(s Set) {
	if cap(s.ids) == 0 {
		return
	}
	sc.free = append(sc.free, s.ids[:0])
}

// Union returns a ∪ b in a pooled buffer.
func (sc *Scratch) Union(a, b Set) Set {
	if a.IsEmpty() && b.IsEmpty() {
		return Set{}
	}
	out := unionInto(sc.take(len(a.ids)+len(b.ids)), a.ids, b.ids)
	return Set{ids: out}
}

// Diff returns a − b in a pooled buffer.
func (sc *Scratch) Diff(a, b Set) Set {
	if a.IsEmpty() {
		return Set{}
	}
	out := diffInto(sc.take(len(a.ids)), a.ids, b.ids)
	return Set{ids: out}
}

// Intersect returns a ∩ b in a pooled buffer.
func (sc *Scratch) Intersect(a, b Set) Set {
	if a.IsEmpty() || b.IsEmpty() {
		return Set{}
	}
	n := len(a.ids)
	if len(b.ids) < n {
		n = len(b.ids)
	}
	out := intersectInto(sc.take(n), a.ids, b.ids)
	return Set{ids: out}
}

// Build canonicalizes the accumulated raw IDs (any order, duplicates fine)
// into a pooled Set and returns the input buffer — reset to zero length, but
// with its grown capacity — for the caller to keep accumulating into.
func (sc *Scratch) Build(raw []intern.ID) (Set, []intern.ID) {
	if len(raw) == 0 {
		return Set{}, raw[:0]
	}
	slices.Sort(raw)
	out := sc.take(len(raw))
	out = append(out, raw[0])
	for _, id := range raw[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return Set{ids: out}, raw[:0]
}
