package idset_test

import (
	"math/rand"
	"testing"

	"algrec/internal/value"
	"algrec/internal/value/idset"
	"algrec/internal/value/intern"
)

// refSet is the naive reference: a map from ID to presence.
type refSet map[intern.ID]bool

func refOf(s idset.Set) refSet {
	out := refSet{}
	for _, id := range s.IDs() {
		out[id] = true
	}
	return out
}

func fromRef(r refSet) idset.Set {
	ids := make([]intern.ID, 0, len(r))
	for id := range r {
		ids = append(ids, id)
	}
	return idset.FromIDs(ids)
}

func refUnion(a, b refSet) refSet {
	out := refSet{}
	for id := range a {
		out[id] = true
	}
	for id := range b {
		out[id] = true
	}
	return out
}

func refDiff(a, b refSet) refSet {
	out := refSet{}
	for id := range a {
		if !b[id] {
			out[id] = true
		}
	}
	return out
}

func refIntersect(a, b refSet) refSet {
	out := refSet{}
	for id := range a {
		if b[id] {
			out[id] = true
		}
	}
	return out
}

func refSubset(a, b refSet) bool {
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

func randIDs(rng *rand.Rand, n, span int) []intern.ID {
	ids := make([]intern.ID, n)
	for i := range ids {
		ids[i] = intern.ID(1 + rng.Intn(span))
	}
	return ids
}

// TestOpsAgainstReference drives every set operation against the map
// reference across size shapes chosen to hit both the element-wise merges
// and the galloping paths (ratios far beyond the crossover factor).
func TestOpsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][2]int{{0, 0}, {1, 0}, {0, 1}, {3, 3}, {8, 8}, {100, 5}, {5, 100}, {1000, 3}, {3, 1000}, {257, 257}, {1, 1000}, {1000, 1}}
	for _, shape := range shapes {
		for trial := 0; trial < 20; trial++ {
			span := 1 + rng.Intn(2000)
			a := idset.FromIDs(randIDs(rng, shape[0], span))
			b := idset.FromIDs(randIDs(rng, shape[1], span))
			ra, rb := refOf(a), refOf(b)

			if got, want := a.Union(b), fromRef(refUnion(ra, rb)); !got.Equal(want) {
				t.Fatalf("shape %v: union = %d elems, want %d", shape, got.Len(), want.Len())
			}
			if got, want := a.Diff(b), fromRef(refDiff(ra, rb)); !got.Equal(want) {
				t.Fatalf("shape %v: diff = %d elems, want %d", shape, got.Len(), want.Len())
			}
			if got, want := a.Intersect(b), fromRef(refIntersect(ra, rb)); !got.Equal(want) {
				t.Fatalf("shape %v: intersect = %d elems, want %d", shape, got.Len(), want.Len())
			}
			if got, want := a.Subset(b), refSubset(ra, rb); got != want {
				t.Fatalf("shape %v: subset = %v, want %v", shape, got, want)
			}
			if got, want := a.Intersect(a).Len(), a.Len(); got != want {
				t.Fatalf("shape %v: a∩a = %d elems, want %d", shape, got, want)
			}
			for id := range ra {
				if !a.Has(id) {
					t.Fatalf("shape %v: Has(%d) = false for member", shape, id)
				}
			}
			if a.Has(intern.ID(span + 10)) {
				t.Fatalf("shape %v: Has of non-member", shape)
			}
		}
	}
}

// TestScratchMatchesPlain checks the pooled kernels against the plain ones,
// including buffer recycling across rounds.
func TestScratchMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sc idset.Scratch
	for trial := 0; trial < 200; trial++ {
		a := idset.FromIDs(randIDs(rng, rng.Intn(300), 1+rng.Intn(500)))
		b := idset.FromIDs(randIDs(rng, rng.Intn(300), 1+rng.Intn(500)))
		u := sc.Union(a, b)
		if !u.Equal(a.Union(b)) {
			t.Fatalf("trial %d: scratch union differs", trial)
		}
		d := sc.Diff(a, b)
		if !d.Equal(a.Diff(b)) {
			t.Fatalf("trial %d: scratch diff differs", trial)
		}
		i := sc.Intersect(a, b)
		if !i.Equal(a.Intersect(b)) {
			t.Fatalf("trial %d: scratch intersect differs", trial)
		}
		built, _ := sc.Build(append(a.IDs(), a.IDs()...))
		if !built.Equal(a) {
			t.Fatalf("trial %d: Build(dup input) differs", trial)
		}
		sc.Release(u)
		sc.Release(d)
		sc.Release(i)
		sc.Release(built)
	}
}

// TestMaterializeRoundTrip pins the value↔ID boundary: FromValueSet then
// Materialize is the identity on canonical sets, even though the two sort
// orders (numeric ID vs value) disagree.
func TestMaterializeRoundTrip(t *testing.T) {
	in := intern.New()
	// Mixed kinds force ID order != value order: later-interned small values
	// get larger IDs.
	s := value.NewSet(
		value.Int(900), value.Int(2), value.String("zz"), value.String("a"),
		value.Pair(value.Int(3), value.Int(1)), value.NewSet(value.Int(5)),
		value.True,
	)
	ids := idset.FromValueSet(in, s)
	if ids.Len() != s.Len() {
		t.Fatalf("FromValueSet: %d IDs, want %d", ids.Len(), s.Len())
	}
	back := ids.Materialize(in)
	if !value.Equal(back, s) {
		t.Fatalf("round trip: got %v, want %v", back, s)
	}
	// The lazy cell returns the same materialization on the second call.
	again := ids.Materialize(in)
	if !value.Equal(again, s) {
		t.Fatalf("second materialize differs: %v", again)
	}
}

// TestSteadyStateRoundAllocs pins the allocation contract of a steady-state
// delta round: with warm scratch buffers, the union/diff/build cycle of a
// round allocates nothing.
func TestSteadyStateRoundAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	acc := idset.FromIDs(randIDs(rng, 4096, 100000))
	out := idset.FromIDs(randIDs(rng, 256, 100000))
	raw := make([]intern.ID, 0, 512)
	raw = append(raw[:0], out.IDs()...)
	var sc idset.Scratch
	// Warm the pool to steady-state sizes.
	for i := 0; i < 4; i++ {
		built, rest := sc.Build(raw)
		next := sc.Union(acc, built)
		delta := sc.Diff(built, acc)
		sc.Release(built)
		sc.Release(next)
		sc.Release(delta)
		raw = append(rest, out.IDs()...)
	}
	n := out.Len()
	raw = raw[:n]
	allocs := testing.AllocsPerRun(50, func() {
		built, rest := sc.Build(raw)
		next := sc.Union(acc, built)
		delta := sc.Diff(built, acc)
		sc.Release(built)
		sc.Release(next)
		sc.Release(delta)
		// Build sorted raw in place; reslicing keeps the same multiset for
		// the next round without copying (IDs() would clone).
		raw = rest[:n]
	})
	if allocs != 0 {
		t.Fatalf("steady-state round allocates %.1f times, want 0", allocs)
	}
}
