package intern

import (
	"fmt"
	"testing"

	"algrec/internal/value"
)

func TestInternScalars(t *testing.T) {
	in := New()
	cases := []value.Value{
		value.True, value.False,
		value.Int(0), value.Int(7), value.Int(-3), value.Int(1 << 40),
		value.String(""), value.String("a"), value.String("Quoted Sym"),
	}
	ids := make([]ID, len(cases))
	for i, v := range cases {
		ids[i] = in.Intern(v)
		if ids[i] == 0 {
			t.Fatalf("Intern(%v) = 0", v)
		}
		if got := in.Lookup(ids[i]); !value.Equal(got, v) {
			t.Fatalf("Lookup(Intern(%v)) = %v", v, got)
		}
	}
	for i, v := range cases {
		if again := in.Intern(v); again != ids[i] {
			t.Errorf("re-Intern(%v) = %d, first time %d", v, again, ids[i])
		}
		for j := range cases {
			if i != j && ids[i] == ids[j] {
				t.Errorf("Intern(%v) == Intern(%v) = %d", v, cases[j], ids[i])
			}
		}
	}
}

func TestInternIntSmallAndLarge(t *testing.T) {
	in := New()
	if a, b := in.InternInt(5), in.Intern(value.Int(5)); a != b {
		t.Errorf("InternInt(5) = %d but Intern(Int(5)) = %d", a, b)
	}
	big := int64(smallIntRange) + 17
	if a, b := in.InternInt(big), in.Intern(value.Int(big)); a != b {
		t.Errorf("InternInt(%d) = %d but Intern = %d", big, a, b)
	}
	if a, b := in.InternInt(-1), in.InternInt(1); a == b {
		t.Errorf("InternInt(-1) == InternInt(1) = %d", a)
	}
}

func TestInternStructuralConstructorsAgreeWithIntern(t *testing.T) {
	in := New()
	a, b := in.InternInt(1), in.InternInt(2)

	tup := in.InternTuple(a, b)
	if got := in.Intern(value.NewTuple(value.Int(1), value.Int(2))); got != tup {
		t.Errorf("InternTuple = %d, Intern(equivalent tuple) = %d", tup, got)
	}
	if got := in.Lookup(tup).String(); got != "(1, 2)" {
		t.Errorf("Lookup(tuple).String() = %q", got)
	}
	if in.InternTuple(b, a) == tup {
		t.Error("InternTuple is order-insensitive; tuples must not be")
	}

	// InternSet canonicalizes: order and duplicates of the input are ignored.
	s1 := in.InternSet(b, a, a)
	s2 := in.InternSet(a, b)
	if s1 != s2 {
		t.Errorf("InternSet(b,a,a) = %d != InternSet(a,b) = %d", s1, s2)
	}
	if got := in.Intern(value.NewSet(value.Int(2), value.Int(1))); got != s1 {
		t.Errorf("Intern(equivalent set) = %d, InternSet = %d", got, s1)
	}
	if got := in.InternSet(); got != in.Intern(value.EmptySet) {
		t.Errorf("InternSet() = %d, Intern(EmptySet) = %d", got, in.Intern(value.EmptySet))
	}

	if got := in.Elems(tup); len(got) != 2 || got[0] != a || got[1] != b {
		t.Errorf("Elems(tuple) = %v, want [%d %d]", got, a, b)
	}
	if got := in.Elems(a); got != nil {
		t.Errorf("Elems(scalar) = %v, want nil", got)
	}
}

// TestGlobalCachesIDs checks the global interner's O(1) re-intern path: the
// ID lands in the value's cache cell, shared by copies, and the cached-ID
// Compare fast path then certifies equality.
func TestGlobalCachesIDs(t *testing.T) {
	v := value.NewTuple(value.Int(100001), value.String("zz"))
	if value.InternID(v) != 0 {
		t.Fatal("fresh tuple already has an intern ID")
	}
	id := Global().Intern(v)
	if got := value.InternID(v); got != uint32(id) {
		t.Fatalf("cache cell holds %d, Intern returned %d", got, id)
	}
	// A structurally equal but distinct value gets the same ID.
	w := value.NewTuple(value.Int(100001), value.String("zz"))
	if Global().Intern(w) != id {
		t.Error("equal value interned to a different global ID")
	}
	if !value.Equal(v, w) {
		t.Error("values unequal after interning")
	}
}

func TestPrivateInternerDoesNotTouchCache(t *testing.T) {
	in := New()
	v := value.NewTuple(value.Int(424242), value.Int(5))
	in.Intern(v)
	if got := value.InternID(v); got != 0 {
		t.Errorf("private interner wrote ID %d into the value cache", got)
	}
}

func TestArenaGrowth(t *testing.T) {
	in := New()
	n := 3 * chunkSize
	ids := make([]ID, n)
	for i := 0; i < n; i++ {
		ids[i] = in.Intern(value.String(fmt.Sprintf("s%d", i)))
	}
	if in.Len() < n {
		t.Fatalf("Len() = %d after %d distinct interns", in.Len(), n)
	}
	for i := 0; i < n; i += 997 {
		if got := in.Lookup(ids[i]).(value.String); string(got) != fmt.Sprintf("s%d", i) {
			t.Fatalf("Lookup(%d) = %q", ids[i], got)
		}
	}
}

func TestEnabledSwitch(t *testing.T) {
	was := SetEnabled(false)
	defer SetEnabled(was)
	if Enabled() {
		t.Fatal("Enabled() true after SetEnabled(false)")
	}
	// Interning itself keeps working while the fast paths are off.
	in := New()
	id := in.Intern(value.NewSet(value.Int(1)))
	if !value.Equal(in.Lookup(id), value.NewSet(value.Int(1))) {
		t.Error("interner broken while disabled")
	}
	if SetEnabled(true) != false {
		t.Error("SetEnabled did not report previous setting")
	}
	if !Enabled() {
		t.Error("Enabled() false after SetEnabled(true)")
	}
}

func TestRelation(t *testing.T) {
	r := NewRelation(2)
	if r.Arity() != 2 || r.Len() != 0 {
		t.Fatalf("fresh relation: arity %d len %d", r.Arity(), r.Len())
	}
	rows := [][]ID{{1, 2}, {2, 3}, {1, 2}, {3, 1}}
	wantIdx := []int{0, 1, 0, 2}
	wantAdd := []bool{true, true, false, true}
	for i, row := range rows {
		idx, added := r.Insert(row)
		if idx != wantIdx[i] || added != wantAdd[i] {
			t.Errorf("Insert(%v) = (%d, %v), want (%d, %v)", row, idx, added, wantIdx[i], wantAdd[i])
		}
	}
	if r.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", r.Len())
	}
	if got := r.Row(1); got[0] != 2 || got[1] != 3 {
		t.Errorf("Row(1) = %v", got)
	}
	if idx, ok := r.Find([]ID{3, 1}); !ok || idx != 2 {
		t.Errorf("Find({3,1}) = (%d, %v)", idx, ok)
	}
	if r.Has([]ID{9, 9}) {
		t.Error("Has reports a row never inserted")
	}
}

func TestRelationArityZero(t *testing.T) {
	r := NewRelation(0)
	if r.Has(nil) {
		t.Fatal("empty arity-0 relation has the empty row")
	}
	if idx, added := r.Insert(nil); idx != 0 || !added {
		t.Fatalf("first Insert = (%d, %v)", idx, added)
	}
	if idx, added := r.Insert([]ID{}); idx != 0 || added {
		t.Fatalf("second Insert = (%d, %v)", idx, added)
	}
	if !r.Has(nil) || r.Len() != 1 {
		t.Fatalf("after insert: Has %v Len %d", r.Has(nil), r.Len())
	}
	if r.Row(0) != nil {
		t.Errorf("Row(0) of arity-0 relation = %v", r.Row(0))
	}
}

func TestRelationArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Insert with wrong arity did not panic")
		}
	}()
	NewRelation(2).Insert([]ID{1})
}
