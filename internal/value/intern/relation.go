package intern

// Relation is a compact fixed-arity relation over interned values: rows are
// ID tuples stored back-to-back in one flat []ID, with an open-addressed
// integer hash index for O(1) membership and insert-if-absent — no per-row
// bucket allocations, so inserting n rows costs O(n) words total. Row
// indices are dense from 0 in insertion order, so a Relation doubles as an
// append-only log of derivations — the grounder's delta passes window it by
// row index exactly like the string-keyed store windows its atom slice.
//
// A Relation is not safe for concurrent mutation; each grounding or fixpoint
// run owns its relations. (The shared structure — the Interner the IDs come
// from — is what the server's concurrent executions share.)
type Relation struct {
	arity int
	rows  []ID    // len = Len()*arity; flat row-major storage
	n     int     // row count, explicit so arity-0 relations work
	table []int32 // open-addressed slots: row index + 1, 0 = empty
	mask  uint32  // len(table)-1; table size is a power of two
}

// relationMinTable is the initial open-addressing table size (power of two).
const relationMinTable = 16

// NewRelation returns an empty relation of the given arity. Arity 0 models
// propositional predicates: the relation is either empty or holds the single
// empty row.
func NewRelation(arity int) *Relation {
	return &Relation{arity: arity, table: make([]int32, relationMinTable), mask: relationMinTable - 1}
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of rows.
func (r *Relation) Len() int { return r.n }

// Row returns the i-th row as a view into the relation's storage. The slice
// must not be modified and is only valid until the next Insert (growth may
// move the backing array).
func (r *Relation) Row(i int) []ID {
	if r.arity == 0 {
		return nil
	}
	return r.rows[i*r.arity : (i+1)*r.arity : (i+1)*r.arity]
}

// probe linearly scans the table from row's hash slot; it returns the slot
// holding the row (idx >= 0) or the first empty slot (idx == -1).
func (r *Relation) probe(row []ID) (slot uint32, idx int) {
	slot = uint32(hashRow(row)) & r.mask
	for {
		ri := r.table[slot]
		if ri == 0 {
			return slot, -1
		}
		if idsEqual(r.Row(int(ri-1)), row) {
			return slot, int(ri - 1)
		}
		slot = (slot + 1) & r.mask
	}
}

// Find returns the index of row and true if present.
func (r *Relation) Find(row []ID) (int, bool) {
	if len(row) != r.arity {
		panic("intern: Relation row arity mismatch")
	}
	if r.arity == 0 {
		if r.n > 0 {
			return 0, true
		}
		return -1, false
	}
	if _, idx := r.probe(row); idx >= 0 {
		return idx, true
	}
	return -1, false
}

// Has reports whether row is present.
func (r *Relation) Has(row []ID) bool {
	_, ok := r.Find(row)
	return ok
}

// Insert adds row if absent. It returns the row's index and whether it was
// newly added. The input slice is copied into the flat storage.
func (r *Relation) Insert(row []ID) (idx int, added bool) {
	if len(row) != r.arity {
		panic("intern: Relation row arity mismatch")
	}
	if r.arity == 0 {
		if r.n > 0 {
			return 0, false
		}
		r.n = 1
		return 0, true
	}
	slot, ri := r.probe(row)
	if ri >= 0 {
		return ri, false
	}
	idx = r.n
	r.rows = append(r.rows, row...)
	r.n++
	// Grow at 3/4 load so probe chains stay short; otherwise claim the slot
	// the failed probe found.
	if uint32(r.n)*4 > (r.mask+1)*3 {
		r.grow()
	} else {
		r.table[slot] = int32(idx + 1)
	}
	return idx, true
}

// grow doubles the table and rehashes every row into it.
func (r *Relation) grow() {
	size := (r.mask + 1) * 2
	r.table = make([]int32, size)
	r.mask = size - 1
	for i := 0; i < r.n; i++ {
		slot := uint32(hashRow(r.Row(i))) & r.mask
		for r.table[slot] != 0 {
			slot = (slot + 1) & r.mask
		}
		r.table[slot] = int32(i + 1)
	}
}

// hashRow hashes an ID row with the same mixer as the interner's node hash
// (no kind seed: rows are not values and live in their own table).
func hashRow(row []ID) uint64 {
	h := uint64(seedNode)
	for _, id := range row {
		h = mix64(h ^ uint64(id))
	}
	return mix64(h ^ uint64(len(row)))
}
