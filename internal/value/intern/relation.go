package intern

// Relation is a compact fixed-arity relation over interned values: rows are
// ID tuples stored back-to-back in one flat []ID, with an open-addressed
// integer hash index for O(1) membership and insert-if-absent — no per-row
// bucket allocations, so inserting n rows costs O(n) words total. Row
// indices are dense from 0 in insertion order, so a Relation doubles as an
// append-only log of derivations — the grounder's delta passes window it by
// row index exactly like the string-keyed store windows its atom slice.
//
// Deletion (used by the storage layer's in-memory backend, never by the
// grounder) is by tombstone: Delete unlinks the row from the index and marks
// its slot dead, but the flat storage is never compacted, so row indices
// stay dense and stable. Len counts every row ever appended; LiveLen counts
// the surviving ones; Scan enumerates survivors in insertion order. A row
// re-inserted after deletion is appended anew, so it re-enters the scan
// order at its latest insertion position — the same contract the on-disk
// log-structured backend recovers from its segments.
//
// A Relation is not safe for concurrent mutation; each grounding or fixpoint
// run owns its relations. (The shared structure — the Interner the IDs come
// from — is what the server's concurrent executions share.)
type Relation struct {
	arity   int
	rows    []ID     // len = Len()*arity; flat row-major storage
	n       int      // appended row count, explicit so arity-0 relations work
	live    int      // rows not tombstoned (== n until the first Delete)
	deleted []uint64 // tombstone bitmap over row indices; nil until first Delete
	table   []int32  // open-addressed slots: row index + 1, 0 = empty, -1 = tombstone
	used    uint32   // occupied slots (live entries + slot tombstones)
	mask    uint32   // len(table)-1; table size is a power of two
}

// relationMinTable is the initial open-addressing table size (power of two).
const relationMinTable = 16

// slotTomb marks a table slot whose row was deleted: probes walk past it,
// inserts may reclaim it.
const slotTomb = -1

// NewRelation returns an empty relation of the given arity. Arity 0 models
// propositional predicates: the relation is either empty or holds the single
// empty row.
func NewRelation(arity int) *Relation {
	return &Relation{arity: arity, table: make([]int32, relationMinTable), mask: relationMinTable - 1}
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of rows ever appended (the grounder's dense log
// length). It includes tombstoned rows; see LiveLen for the live count.
func (r *Relation) Len() int { return r.n }

// LiveLen returns the number of rows that have not been deleted.
func (r *Relation) LiveLen() int { return r.live }

// Row returns the i-th row as a view into the relation's storage. The slice
// must not be modified and is only valid until the next Insert (growth may
// move the backing array). Deleted rows keep their storage; check Live when
// the relation may have seen deletions.
func (r *Relation) Row(i int) []ID {
	if r.arity == 0 {
		return nil
	}
	return r.rows[i*r.arity : (i+1)*r.arity : (i+1)*r.arity]
}

// Live reports whether the i-th row has not been deleted.
func (r *Relation) Live(i int) bool {
	// The bitmap only grows as far as the highest tombstoned index; rows
	// appended after the last Delete lie beyond it and are live.
	if i>>6 >= len(r.deleted) {
		return true
	}
	return r.deleted[i>>6]&(1<<(uint(i)&63)) == 0
}

// markDeleted sets row i's tombstone bit.
func (r *Relation) markDeleted(i int) {
	if r.deleted == nil {
		r.deleted = make([]uint64, (r.n+63)/64)
	}
	for len(r.deleted)*64 <= i {
		r.deleted = append(r.deleted, 0)
	}
	r.deleted[i>>6] |= 1 << (uint(i) & 63)
}

// Scan calls yield for every live row in insertion order, stopping early if
// yield returns false. The row slice is a view (see Row); arity-0 relations
// yield one nil row when non-empty.
func (r *Relation) Scan(yield func(i int, row []ID) bool) {
	if r.arity == 0 {
		if r.live > 0 {
			yield(0, nil)
		}
		return
	}
	for i := 0; i < r.n; i++ {
		if !r.Live(i) {
			continue
		}
		if !yield(i, r.Row(i)) {
			return
		}
	}
}

// probe linearly scans the table from row's hash slot; it returns the slot
// holding the row (idx >= 0) or the slot an insert should claim (idx == -1:
// the first tombstone on the probe path, else the terminating empty slot).
func (r *Relation) probe(row []ID) (slot uint32, idx int) {
	slot = uint32(hashRow(row)) & r.mask
	reuse := int64(-1)
	for {
		ri := r.table[slot]
		if ri == 0 {
			if reuse >= 0 {
				slot = uint32(reuse)
			}
			return slot, -1
		}
		if ri == slotTomb {
			if reuse < 0 {
				reuse = int64(slot)
			}
		} else if idsEqual(r.Row(int(ri-1)), row) {
			return slot, int(ri - 1)
		}
		slot = (slot + 1) & r.mask
	}
}

// Find returns the index of row and true if present (and not deleted).
func (r *Relation) Find(row []ID) (int, bool) {
	if len(row) != r.arity {
		panic("intern: Relation row arity mismatch")
	}
	if r.arity == 0 {
		if r.live > 0 {
			return 0, true
		}
		return -1, false
	}
	if _, idx := r.probe(row); idx >= 0 {
		return idx, true
	}
	return -1, false
}

// Has reports whether row is present.
func (r *Relation) Has(row []ID) bool {
	_, ok := r.Find(row)
	return ok
}

// Insert adds row if absent. It returns the row's index and whether it was
// newly added. The input slice is copied into the flat storage.
func (r *Relation) Insert(row []ID) (idx int, added bool) {
	if len(row) != r.arity {
		panic("intern: Relation row arity mismatch")
	}
	if r.arity == 0 {
		if r.live > 0 {
			return 0, false
		}
		r.n, r.live = 1, 1
		if r.deleted != nil {
			r.deleted[0] &^= 1 // revive the single propositional row
		}
		return 0, true
	}
	slot, ri := r.probe(row)
	if ri >= 0 {
		return ri, false
	}
	idx = r.n
	r.rows = append(r.rows, row...)
	r.n++
	r.live++
	if r.table[slot] == 0 {
		r.used++
	}
	// Grow at 3/4 load (live entries plus slot tombstones) so probe chains
	// stay short; otherwise claim the slot the failed probe found.
	if r.used*4 > (r.mask+1)*3 {
		r.grow()
	} else {
		r.table[slot] = int32(idx + 1)
	}
	return idx, true
}

// Delete removes row if present, returning the former row index and whether
// a row was removed. The flat storage keeps the tombstoned row (indices are
// never reused); a later Insert of the same row appends a fresh copy.
func (r *Relation) Delete(row []ID) (idx int, removed bool) {
	if len(row) != r.arity {
		panic("intern: Relation row arity mismatch")
	}
	if r.arity == 0 {
		if r.live == 0 {
			return -1, false
		}
		r.live = 0
		r.markDeleted(0)
		return 0, true
	}
	slot, ri := r.probe(row)
	if ri < 0 {
		return -1, false
	}
	r.table[slot] = slotTomb
	r.markDeleted(ri)
	r.live--
	return ri, true
}

// grow doubles the table and rehashes every live row into it.
func (r *Relation) grow() {
	size := (r.mask + 1) * 2
	r.table = make([]int32, size)
	r.mask = size - 1
	r.used = 0
	for i := 0; i < r.n; i++ {
		if !r.Live(i) {
			continue
		}
		slot := uint32(hashRow(r.Row(i))) & r.mask
		for r.table[slot] != 0 {
			slot = (slot + 1) & r.mask
		}
		r.table[slot] = int32(i + 1)
		r.used++
	}
}

// HashRow returns the row hash the relation index uses — exported so the
// storage layer's backends and shard partitioner agree with the in-memory
// index on row identity.
func HashRow(row []ID) uint64 { return hashRow(row) }

// hashRow hashes an ID row with the same mixer as the interner's node hash
// (no kind seed: rows are not values and live in their own table).
func hashRow(row []ID) uint64 {
	h := uint64(seedNode)
	for _, id := range row {
		h = mix64(h ^ uint64(id))
	}
	return mix64(h ^ uint64(len(row)))
}
