package intern

import (
	"testing"

	"algrec/internal/value"
)

// benchTuples returns n distinct (i, i+1) pair tuples, the grounder's
// dominant value shape.
func benchTuples(n int) []value.Tuple {
	out := make([]value.Tuple, n)
	for i := range out {
		out[i] = value.NewTuple(value.Int(int64(i)), value.Int(int64(i+1)))
	}
	return out
}

// BenchmarkInternHit measures re-interning already-consed values through a
// private interner (table probe; no cache cell shortcut).
func BenchmarkInternHit(b *testing.B) {
	in := New()
	tuples := benchTuples(1024)
	for _, t := range tuples {
		in.Intern(t)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Intern(tuples[i%len(tuples)])
	}
}

// BenchmarkInternHitCached measures the global interner's cached-ID path:
// after the first Intern the value's cache cell short-circuits the probe.
func BenchmarkInternHitCached(b *testing.B) {
	tuples := benchTuples(1024)
	for _, t := range tuples {
		Global().Intern(t)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Global().Intern(tuples[i%len(tuples)])
	}
}

// BenchmarkInternMiss measures first-sight consing, arena append included.
func BenchmarkInternMiss(b *testing.B) {
	in := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.InternTuple(in.InternInt(int64(i)), in.InternInt(int64(i%7)))
	}
}

// BenchmarkMembershipID measures set membership as a Relation probe over ID
// rows; BenchmarkMembershipStructural is the same workload through
// value.Set.Has (binary search with structural Compare). The ratio is the
// per-operation payoff the ID representation buys the grounder.
func BenchmarkMembershipID(b *testing.B) {
	in := New()
	const n = 4096
	rel := NewRelation(2)
	for i := 0; i < n; i++ {
		rel.Insert([]ID{in.InternInt(int64(i)), in.InternInt(int64(i + 1))})
	}
	row := make([]ID, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := int64(i % n)
		row[0], row[1] = in.InternInt(k), in.InternInt(k+1)
		if !rel.Has(row) {
			b.Fatal("missing row")
		}
	}
}

func BenchmarkMembershipStructural(b *testing.B) {
	const n = 4096
	elems := make([]value.Value, n)
	for i := range elems {
		elems[i] = value.NewTuple(value.Int(int64(i)), value.Int(int64(i+1)))
	}
	s := value.NewSet(elems...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := int64(i % n)
		// A fresh tuple each probe: no cache cell, like a just-computed join key.
		if !s.Has(value.NewTuple(value.Int(k), value.Int(k+1))) {
			b.Fatal("missing element")
		}
	}
}
