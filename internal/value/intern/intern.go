// Package intern implements hash-consing for the value model: every
// value.Value maps to a canonical ID (a uint32, dense from 1), so structural
// equality becomes integer comparison and nested objects can be built
// bottom-up from the IDs of their parts without re-hashing their contents.
//
// An Interner is an append-only arena plus a sharded hash table. IDs are
// never reused or reassigned, so a published ID is immutable evidence: two
// values interned by the same Interner are structurally equal iff their IDs
// are equal. The process-global interner (Global) additionally writes each
// value's ID back onto the value's cache cell, which makes re-interning O(1)
// and lets value.Compare prove equality from two cached IDs without walking
// either value.
//
// Concurrency: Intern, InternTuple, InternSet and InternInt take one shard
// lock (64 shards) plus a short arena lock on first sight of a value; Lookup
// is lock-free (an atomic load of the chunk directory). The arena only grows,
// entries are written before their ID is published, and publication happens
// under a shard mutex or through an atomic cache-cell store, so readers that
// hold an ID always observe its fully-written entry. The package is
// -race-clean under concurrent use from the server's executor pool.
package intern

import (
	"sort"
	"sync"
	"sync/atomic"

	"algrec/internal/value"
)

// ID is the canonical identifier of an interned value. The zero ID is
// invalid: real IDs start at 1, so a zero in a cache cell or a row slot
// unambiguously means "not interned yet".
type ID uint32

const (
	nShards   = 64
	shardMask = nShards - 1

	// chunkBits sizes the arena chunks (4096 entries each). Chunks are never
	// moved once allocated, so &entry stays valid across growth and the
	// directory can be republished with a plain copy.
	chunkBits = 12
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1

	// smallIntRange bounds the direct-indexed fast path for InternInt: the
	// workload integers of every experiment (chain node numbers, generated
	// scalars) land far below it.
	smallIntRange = 1 << 14
)

// entry is one arena slot: the canonical value and, for tuples and sets, the
// IDs of its elements (in tuple order / canonical set order). sub doubles as
// the structural signature used to verify hash-bucket candidates, so a probe
// never needs a deep Compare.
type entry struct {
	v   value.Value
	sub []ID // nil for scalars
}

type shard struct {
	mu      sync.Mutex
	buckets map[uint64][]ID
}

// Interner is a hash-consing arena. The zero value is not usable; construct
// with New, or use the shared process-global instance from Global.
type Interner struct {
	// global marks the process-global interner, the only one allowed to
	// write IDs into value cache cells (a private interner's IDs would
	// corrupt the cells for everyone else).
	global bool

	shards [nShards]shard

	mu   sync.Mutex // guards arena growth (dir republish, next)
	dir  atomic.Pointer[[]*chunk]
	next atomic.Uint32 // count of assigned IDs; written under mu

	smallInts []atomic.Uint32 // value.Int(i) -> ID, 0 = not yet consed

	trueID, falseID ID
}

type chunk struct {
	entries [chunkSize]entry
}

// New returns a fresh private interner with its own ID space. Private
// interners never touch value cache cells; tests use them to exercise the
// consing logic in isolation.
func New() *Interner { return newInterner(false) }

var globalInterner = newInterner(true)

// Global returns the process-global interner shared by every engine and, via
// the server, by all named databases. Its IDs are the ones cached on value
// cells and used by the Compare fast path.
func Global() *Interner { return globalInterner }

func newInterner(global bool) *Interner {
	in := &Interner{
		global:    global,
		smallInts: make([]atomic.Uint32, smallIntRange),
	}
	for i := range in.shards {
		in.shards[i].buckets = make(map[uint64][]ID)
	}
	dir := make([]*chunk, 0)
	in.dir.Store(&dir)
	in.trueID = in.Intern(value.True)
	in.falseID = in.Intern(value.False)
	return in
}

// Enabled reports whether the hash-consed fast paths are enabled process-wide
// (see value.InterningEnabled). Interners work regardless; the switch only
// governs whether engines choose the ID-keyed representations.
func Enabled() bool { return value.InterningEnabled() }

// SetEnabled flips the process-wide fast-path switch and returns the previous
// setting. cmd/bench -nointern and the diffcheck ablation oracles use it.
func SetEnabled(on bool) (was bool) { return value.SetInterning(on) }

// Len returns the number of distinct values interned so far.
func (in *Interner) Len() int { return int(in.next.Load()) }

// Lookup returns the canonical value for id. It is lock-free and safe for
// concurrent use. Lookup panics if id is zero or was not issued by this
// interner.
func (in *Interner) Lookup(id ID) value.Value { return in.entryOf(id).v }

// Elems returns the element IDs of an interned tuple or set (tuple order,
// respectively canonical set order), or nil for a scalar. The returned slice
// is owned by the interner and must not be modified.
func (in *Interner) Elems(id ID) []ID { return in.entryOf(id).sub }

func (in *Interner) entryOf(id ID) *entry {
	if id == 0 {
		panic("intern: Lookup of zero ID")
	}
	i := uint32(id) - 1
	dir := *in.dir.Load()
	return &dir[i>>chunkBits].entries[i&chunkMask]
}

// Intern returns the canonical ID for v, assigning one if v has not been
// seen. Nested tuples and sets are consed bottom-up, so a second Intern of a
// structurally equal value — however it was built — returns the same ID.
func (in *Interner) Intern(v value.Value) ID {
	if in.global {
		if id := value.InternID(v); id != 0 {
			return ID(id)
		}
	}
	switch vv := v.(type) {
	case value.Bool:
		// trueID/falseID are 0 only during newInterner's own bootstrap.
		if vv && in.trueID != 0 {
			return in.trueID
		}
		if !vv && in.falseID != 0 {
			return in.falseID
		}
		return in.internScalar(v, hashBool(bool(vv)))
	case value.Int:
		return in.InternInt(int64(vv))
	case value.String:
		return in.internScalar(v, hashString(string(vv)))
	case value.Tuple:
		ids := make([]ID, vv.Len())
		for i := range ids {
			ids[i] = in.Intern(vv.At(i))
		}
		return in.internNode(value.KindTuple, ids, v)
	case value.Set:
		ids := make([]ID, vv.Len())
		for i := range ids {
			ids[i] = in.Intern(vv.At(i))
		}
		return in.internNode(value.KindSet, ids, v)
	default:
		panic("intern: unknown value kind")
	}
}

// InternInt returns the canonical ID for the integer i. Small non-negative
// integers resolve through a direct-indexed array: one atomic load on a hit.
func (in *Interner) InternInt(i int64) ID {
	if i >= 0 && i < smallIntRange {
		if id := in.smallInts[i].Load(); id != 0 {
			return ID(id)
		}
		id := in.internScalar(value.Int(i), hashInt(i))
		in.smallInts[i].Store(uint32(id))
		return id
	}
	return in.internScalar(value.Int(i), hashInt(i))
}

// InternTuple returns the canonical ID of the tuple whose elements are the
// given already-interned IDs, materializing the tuple value only on first
// sight. This is the consing constructor the grounder's fact store uses to
// turn a projected ID row into a single map key.
func (in *Interner) InternTuple(ids ...ID) ID {
	return in.internNode(value.KindTuple, ids, nil)
}

// InternSet returns the canonical ID of the set of the given already-interned
// element IDs. The elements are canonicalized (sorted by the value order,
// deduplicated) first, so InternSet agrees with Intern of the equivalent
// value.NewSet regardless of input order.
func (in *Interner) InternSet(ids ...ID) ID {
	cp := make([]ID, len(ids))
	copy(cp, ids)
	sort.Slice(cp, func(i, j int) bool {
		return in.Lookup(cp[i]).Compare(in.Lookup(cp[j])) < 0
	})
	out := cp[:0]
	for _, id := range cp {
		// Equal values have equal IDs here, so adjacent-ID dedup is exact.
		if len(out) == 0 || out[len(out)-1] != id {
			out = append(out, id)
		}
	}
	return in.internNode(value.KindSet, out, nil)
}

// internScalar interns a bool, int or string by content hash.
func (in *Interner) internScalar(v value.Value, h uint64) ID {
	sh := &in.shards[h&shardMask]
	sh.mu.Lock()
	for _, cand := range sh.buckets[h] {
		if value.Equal(in.entryOf(cand).v, v) {
			sh.mu.Unlock()
			return cand
		}
	}
	id := in.alloc(v, nil)
	sh.buckets[h] = append(sh.buckets[h], id)
	sh.mu.Unlock()
	return id
}

// internNode interns a tuple or set given its element IDs. v is the original
// value when the caller has one (Intern) and nil when the node is built from
// IDs alone (InternTuple/InternSet); in the latter case the canonical value
// is materialized from the arena on first sight.
func (in *Interner) internNode(kind value.Kind, ids []ID, v value.Value) ID {
	h := hashIDs(kind, ids)
	sh := &in.shards[h&shardMask]
	sh.mu.Lock()
	for _, cand := range sh.buckets[h] {
		e := in.entryOf(cand)
		if e.v.Kind() == kind && idsEqual(e.sub, ids) {
			sh.mu.Unlock()
			if in.global && v != nil {
				value.CacheInternID(v, uint32(cand))
			}
			return cand
		}
	}
	if v == nil {
		v = in.materialize(kind, ids)
	}
	sub := make([]ID, len(ids)) // own the signature: callers may reuse ids
	copy(sub, ids)
	id := in.alloc(v, sub)
	sh.buckets[h] = append(sh.buckets[h], id)
	sh.mu.Unlock()
	if in.global {
		value.CacheInternID(v, uint32(id))
	}
	return id
}

// materialize builds the value for a node interned from IDs alone.
func (in *Interner) materialize(kind value.Kind, ids []ID) value.Value {
	elems := make([]value.Value, len(ids))
	for i, id := range ids {
		elems[i] = in.Lookup(id)
	}
	if kind == value.KindTuple {
		return value.NewTuple(elems...)
	}
	// ids are already in canonical set order; NewSet just re-verifies that.
	return value.NewSet(elems...)
}

// alloc appends a fully-written entry to the arena and returns its new ID.
// Callers publish the ID (bucket append under the shard mutex, or an atomic
// cache-cell store) only after alloc returns, which is what makes lock-free
// Lookup safe.
func (in *Interner) alloc(v value.Value, sub []ID) ID {
	in.mu.Lock()
	i := in.next.Load()
	ci, off := int(i>>chunkBits), i&chunkMask
	dir := *in.dir.Load()
	if ci >= len(dir) {
		nd := make([]*chunk, ci+1)
		copy(nd, dir)
		nd[ci] = &chunk{}
		in.dir.Store(&nd)
		dir = nd
	}
	dir[ci].entries[off] = entry{v: v, sub: sub}
	in.next.Store(i + 1)
	in.mu.Unlock()
	return ID(i + 1)
}

func idsEqual(a, b []ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mix64 is the SplitMix64 finalizer: a cheap full-avalanche mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Kind seeds keep hashes of different kinds decorrelated even for equal
// payload bits (Int(1) vs an ID sequence [1]).
const (
	seedBool   = 0x42085931bca93457
	seedInt    = 0x9e3779b97f4a7c15
	seedString = 0xc2b2ae3d27d4eb4f
	seedNode   = 0x2545f4914f6cdd1d
)

func hashBool(b bool) uint64 {
	if b {
		return mix64(seedBool ^ 1)
	}
	return mix64(seedBool)
}

func hashInt(i int64) uint64 { return mix64(seedInt ^ uint64(i)) }

// hashString is FNV-1a folded through mix64.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(seedString ^ h)
}

func hashIDs(kind value.Kind, ids []ID) uint64 {
	h := mix64(seedNode ^ uint64(kind))
	for _, id := range ids {
		h = mix64(h ^ uint64(id))
	}
	return mix64(h ^ uint64(len(ids)))
}
