package intern

import (
	"math/rand"
	"testing"
)

func irow(xs ...int) []ID {
	ids := make([]ID, len(xs))
	for i, x := range xs {
		ids[i] = ID(x + 1) // any nonzero IDs; the relation never dereferences them
	}
	return ids
}

func scanRows(r *Relation) [][]ID {
	var out [][]ID
	r.Scan(func(_ int, row []ID) bool {
		cp := make([]ID, len(row))
		copy(cp, row)
		out = append(out, cp)
		return true
	})
	return out
}

func TestRelationDeleteBasics(t *testing.T) {
	r := NewRelation(2)
	r.Insert(irow(1, 2))
	r.Insert(irow(3, 4))
	r.Insert(irow(5, 6))

	if idx, removed := r.Delete(irow(3, 4)); !removed || idx != 1 {
		t.Fatalf("Delete = (%d, %v)", idx, removed)
	}
	if _, removed := r.Delete(irow(3, 4)); removed {
		t.Fatal("double delete reported removal")
	}
	if _, removed := r.Delete(irow(9, 9)); removed {
		t.Fatal("deleting an absent row reported removal")
	}
	if r.Has(irow(3, 4)) {
		t.Fatal("deleted row still present")
	}
	if !r.Has(irow(1, 2)) || !r.Has(irow(5, 6)) {
		t.Fatal("surviving rows lost")
	}
	if r.Len() != 3 || r.LiveLen() != 2 {
		t.Fatalf("Len=%d LiveLen=%d, want 3/2", r.Len(), r.LiveLen())
	}
	if r.Live(1) || !r.Live(0) || !r.Live(2) {
		t.Fatal("Live bits wrong")
	}
	got := scanRows(r)
	if len(got) != 2 || got[0][0] != irow(1)[0] || got[1][0] != irow(5)[0] {
		t.Fatalf("scan after delete = %v", got)
	}

	// Re-insert appends anew: fresh index, latest scan position.
	idx, added := r.Insert(irow(3, 4))
	if !added || idx != 3 {
		t.Fatalf("re-insert = (%d, %v), want (3, true)", idx, added)
	}
	if r.Len() != 4 || r.LiveLen() != 3 {
		t.Fatalf("after revive Len=%d LiveLen=%d", r.Len(), r.LiveLen())
	}
	got = scanRows(r)
	if len(got) != 3 || got[2][0] != irow(3)[0] {
		t.Fatalf("scan after re-insert = %v", got)
	}
}

func TestRelationDeleteArity0(t *testing.T) {
	r := NewRelation(0)
	if _, removed := r.Delete(nil); removed {
		t.Fatal("delete on empty propositional relation")
	}
	if _, added := r.Insert(nil); !added {
		t.Fatal("insert empty row")
	}
	if _, added := r.Insert(nil); added {
		t.Fatal("double insert of empty row")
	}
	if _, removed := r.Delete(nil); !removed {
		t.Fatal("delete of present empty row")
	}
	if r.LiveLen() != 0 || r.Has(nil) {
		t.Fatal("propositional delete did not empty the relation")
	}
	// Revive after delete: the tombstone bit must clear.
	if _, added := r.Insert(nil); !added {
		t.Fatal("revive empty row")
	}
	if r.LiveLen() != 1 || !r.Live(0) || !r.Has(nil) {
		t.Fatal("revived propositional row not live")
	}
	if n := len(scanRows(r)); n != 1 {
		t.Fatalf("scan yielded %d rows, want 1", n)
	}
}

// TestRelationDeleteTombstoneReuse drives inserts through slot tombstones:
// deleting then inserting different rows must reuse table slots without ever
// losing a row or resurrecting a deleted one.
func TestRelationDeleteTombstoneReuse(t *testing.T) {
	r := NewRelation(1)
	for i := 0; i < 100; i++ {
		r.Insert(irow(i))
	}
	for i := 0; i < 100; i += 2 {
		r.Delete(irow(i))
	}
	// New keys that will probe across the tombstoned slots.
	for i := 100; i < 200; i++ {
		r.Insert(irow(i))
	}
	for i := 0; i < 200; i++ {
		want := i >= 100 || i%2 == 1
		if r.Has(irow(i)) != want {
			t.Fatalf("Has(%d) = %v, want %v", i, !want, want)
		}
	}
	if r.LiveLen() != 150 {
		t.Fatalf("LiveLen = %d, want 150", r.LiveLen())
	}
}

// TestRelationDeleteModel compares random insert/delete churn against a
// map+order model, including growth with many tombstones.
func TestRelationDeleteModel(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	r := NewRelation(2)
	type key [2]ID
	present := map[key]bool{}
	var order []key
	for step := 0; step < 5000; step++ {
		row := irow(rng.Intn(60), rng.Intn(60))
		k := key{row[0], row[1]}
		if rng.Intn(3) == 0 {
			_, removed := r.Delete(row)
			if removed != present[k] {
				t.Fatalf("step %d: Delete(%v) = %v, model %v", step, row, removed, present[k])
			}
			if present[k] {
				delete(present, k)
				for i, o := range order {
					if o == k {
						order = append(order[:i], order[i+1:]...)
						break
					}
				}
			}
		} else {
			_, added := r.Insert(row)
			if added == present[k] {
				t.Fatalf("step %d: Insert(%v) = %v, model has %v", step, row, added, present[k])
			}
			if !present[k] {
				present[k] = true
				order = append(order, k)
			}
		}
	}
	if r.LiveLen() != len(present) {
		t.Fatalf("LiveLen = %d, model %d", r.LiveLen(), len(present))
	}
	got := scanRows(r)
	if len(got) != len(order) {
		t.Fatalf("scan %d rows, model %d", len(got), len(order))
	}
	for i, k := range order {
		if got[i][0] != k[0] || got[i][1] != k[1] {
			t.Fatalf("scan order at %d: %v, model %v", i, got[i], k)
		}
	}
	for k := range present {
		if !r.Has([]ID{k[0], k[1]}) {
			t.Fatalf("model row %v missing", k)
		}
	}
	// Find agrees with Has and reports live indices only.
	for i := 0; i < 60; i++ {
		for j := 0; j < 60; j++ {
			row := []ID{ID(i + 1), ID(j + 1)}
			idx, ok := r.Find(row)
			if ok != present[key{row[0], row[1]}] {
				t.Fatalf("Find(%v) = %v", row, ok)
			}
			if ok && !r.Live(idx) {
				t.Fatalf("Find returned dead index %d for %v", idx, row)
			}
		}
	}
}
