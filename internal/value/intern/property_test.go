package intern_test

// External test package: these tests drive the interner with randgen's value
// generator, and randgen (via internal/algebra) itself depends on intern —
// an import cycle if they lived in the internal test package.

import (
	"sync"
	"testing"

	"algrec/internal/randgen"
	"algrec/internal/value"
	"algrec/internal/value/intern"
)

// TestInternProperty is the satellite property test: on randomly generated
// deeply nested values, Lookup∘Intern is the identity and Intern is injective
// (equal IDs iff structurally equal values).
func TestInternProperty(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		in := intern.New()
		g := randgen.New(seed, randgen.Config{Size: 3})
		vals := make([]value.Value, 60)
		ids := make([]intern.ID, len(vals))
		for i := range vals {
			vals[i] = g.Value(3)
			ids[i] = in.Intern(vals[i])
			if got := in.Lookup(ids[i]); !value.Equal(got, vals[i]) {
				t.Fatalf("seed %d: Lookup∘Intern != id for %v (got %v)", seed, vals[i], got)
			}
		}
		for i := range vals {
			for j := range vals {
				eq := value.Equal(vals[i], vals[j])
				if eq != (ids[i] == ids[j]) {
					t.Fatalf("seed %d: Equal=%v but ids %d vs %d for %v / %v",
						seed, eq, ids[i], ids[j], vals[i], vals[j])
				}
			}
		}
	}
}

func TestInternConcurrent(t *testing.T) {
	in := intern.New()
	const workers = 8
	ids := make([][]intern.ID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := randgen.New(99, randgen.Config{Size: 3}) // same seed: same values
			for i := 0; i < 40; i++ {
				ids[w] = append(ids[w], in.Intern(g.Value(3)))
			}
		}()
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range ids[0] {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d interned value %d to ID %d, worker 0 got %d",
					w, i, ids[w][i], ids[0][i])
			}
		}
	}
}
