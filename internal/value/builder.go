package value

// SetBuilder accumulates elements and canonicalizes once at Set time, instead
// of paying Insert's binary-search-and-shift per element. It is the right
// tool wherever a set is grown element-by-element from an unsorted stream:
// the grounder collecting derived facts, randgen drawing random elements.
//
// The zero SetBuilder is ready to use. A builder must not be reused after
// Set is called.
type SetBuilder struct {
	elems []Value
	done  bool
}

// NewSetBuilder returns a builder with capacity for n elements.
func NewSetBuilder(n int) *SetBuilder {
	return &SetBuilder{elems: make([]Value, 0, n)}
}

// Add appends v to the pending elements. Duplicates are fine; they are
// removed when Set canonicalizes.
func (b *SetBuilder) Add(v Value) {
	if b.done {
		panic("value: SetBuilder used after Set")
	}
	b.elems = append(b.elems, v)
}

// Len returns the number of pending elements, duplicates included.
func (b *SetBuilder) Len() int { return len(b.elems) }

// Set sorts and deduplicates the accumulated elements in place and returns
// the resulting set. The builder takes ownership of its buffer, so this
// performs no copy beyond the canonicalization itself.
func (b *SetBuilder) Set() Set {
	b.done = true
	if len(b.elems) == 0 {
		return Set{}
	}
	SortValues(b.elems)
	out := b.elems[:1]
	for _, v := range b.elems[1:] {
		if v.Compare(out[len(out)-1]) != 0 {
			out = append(out, v)
		}
	}
	b.elems = nil
	return setFromSorted(out)
}
