package value

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// referenceUnion and referenceDiff are the obviously-correct specifications
// the galloping fast paths must match element-for-element.
func referenceUnion(s, t Set) Set { return NewSet(append(s.Elems(), t.Elems()...)...) }

func referenceDiff(s, t Set) Set {
	var out []Value
	for _, e := range s.Elems() {
		if !t.Has(e) {
			out = append(out, e)
		}
	}
	return NewSet(out...)
}

// randSizedSet draws n values from a bounded universe, so lopsided size pairs
// exercise the galloping paths with both disjoint and overlapping content.
func randSizedSet(r *rand.Rand, n, bound int) Set {
	elems := make([]Value, n)
	for i := range elems {
		elems[i] = Int(int64(r.Intn(bound)))
	}
	return NewSet(elems...)
}

// TestPropertyUnionDiffGallop: Union and Diff agree with their reference
// implementations on size pairs spanning the merge path, the gallop path
// (ratio >= gallopFactor on either side) and the boundary between them.
func TestPropertyUnionDiffGallop(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sizes := []int{0, 1, 2, 3, 7, 8, 9, 50, 200}
		ls, ts := sizes[r.Intn(len(sizes))], sizes[r.Intn(len(sizes))]
		bound := 1 + r.Intn(300)
		s, u := randSizedSet(r, ls, bound), randSizedSet(r, ts, bound)
		if got, want := s.Union(u), referenceUnion(s, u); !Equal(got, want) {
			t.Logf("seed %d: %v ∪ %v = %v, want %v", seed, s, u, got, want)
			return false
		}
		if got, want := u.Union(s), referenceUnion(s, u); !Equal(got, want) {
			t.Logf("seed %d: union not commutative: %v", seed, got)
			return false
		}
		if got, want := s.Diff(u), referenceDiff(s, u); !Equal(got, want) {
			t.Logf("seed %d: %v − %v = %v, want %v", seed, s, u, got, want)
			return false
		}
		if got, want := u.Diff(s), referenceDiff(u, s); !Equal(got, want) {
			t.Logf("seed %d: %v − %v = %v, want %v", seed, u, s, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestUnionGallopEdgeCases pins the slab-copy boundaries the property test
// may miss: small entirely before, after, interleaved with, and inside big.
func TestUnionGallopEdgeCases(t *testing.T) {
	big := make([]Value, 0, 100)
	for i := 10; i < 110; i++ {
		big = append(big, Int(int64(i)))
	}
	b := NewSet(big...)
	cases := []struct {
		name  string
		small Set
	}{
		{"all below", NewSet(Int(1), Int(2))},
		{"all above", NewSet(Int(200), Int(201))},
		{"duplicates only", NewSet(Int(10), Int(50), Int(109))},
		{"straddling", NewSet(Int(1), Int(55), Int(200))},
		{"adjacent duplicates", NewSet(Int(54), Int(55), Int(56))},
	}
	for _, c := range cases {
		got := b.Union(c.small)
		want := referenceUnion(b, c.small)
		if !Equal(got, want) {
			t.Errorf("%s: big ∪ %v: got %d elems, want %d", c.name, c.small, got.Len(), want.Len())
		}
		if got2 := c.small.Union(b); !Equal(got2, want) {
			t.Errorf("%s flipped: got %d elems, want %d", c.name, got2.Len(), want.Len())
		}
	}
}

// TestPropertyInsert: Insert matches NewSet of the extended element slice and
// is a no-op on present elements (returning the receiver unchanged, since
// sets are immutable).
func TestPropertyInsert(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randSizedSet(r, r.Intn(40), 60)
		v := Int(int64(r.Intn(60)))
		got := s.Insert(v)
		want := NewSet(append(s.Elems(), Value(v))...)
		if !Equal(got, want) {
			t.Logf("seed %d: %v.Insert(%v) = %v, want %v", seed, s, v, got, want)
			return false
		}
		if s.Has(v) && got.Len() != s.Len() {
			t.Logf("seed %d: inserting a member changed the size", seed)
			return false
		}
		// The original must be untouched (two-slab copy, no aliasing).
		if !Equal(s, NewSet(s.Elems()...)) {
			t.Logf("seed %d: Insert mutated the receiver", seed)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestInsertPositions(t *testing.T) {
	s := NewSet(Int(10), Int(20), Int(30))
	for _, c := range []struct {
		v    Value
		want Set
	}{
		{Int(5), NewSet(Int(5), Int(10), Int(20), Int(30))},
		{Int(15), NewSet(Int(10), Int(15), Int(20), Int(30))},
		{Int(35), NewSet(Int(10), Int(20), Int(30), Int(35))},
		{Int(20), s},
	} {
		if got := s.Insert(c.v); !Equal(got, c.want) {
			t.Errorf("Insert(%v) = %v, want %v", c.v, got, c.want)
		}
	}
	if got := EmptySet.Insert(Int(1)); !Equal(got, NewSet(Int(1))) {
		t.Errorf("EmptySet.Insert = %v", got)
	}
}
