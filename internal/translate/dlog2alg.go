package translate

import (
	"fmt"
	"sort"
	"strconv"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/datalog"
	"algrec/internal/value"
)

// This file implements the deduction-to-algebra direction of Section 6: each
// derived predicate P_i gets a *simulation function* exp_i — an algebra
// expression over the predicates' set representations that performs one
// simultaneous derivation step of P_i's rules — and the algebra= program
// defines P_i^a as the fixed point P_i^a = exp_i(P̄^a, R̄^a) (Proposition
// 6.1). Rule bodies are range formulas (the program must be safe, Definition
// 4.1), so each body compiles to a join-select-map pipeline whose
// intermediate elements are flat tuples of the rule's bound variables;
// negated atoms compile to subtraction of the matching environment tuples,
// the classical relational-algebra treatment.

// DatalogToCore translates a safe deductive program into an equivalent
// algebra= program plus the extracted database (Proposition 6.1). The
// returned program has one 0-ary definition per derived predicate, named
// after it; evaluating it with core.EvalValid yields the same relations, as
// three-valued sets, as evaluating the original program under the valid
// semantics (Theorem 6.2).
func DatalogToCore(p *datalog.Program) (*core.Program, algebra.DB, error) {
	return datalogToCore(p, true)
}

// DatalogToCoreNoFlip is DatalogToCore without the Flip polarity annotation
// on the anti-join's correlated environment copy. It exists only for the A1
// ablation experiment: the result is still *sound* (its certain facts are
// true and its possible facts cover the truth), but it may report decided
// memberships as undefined. Use DatalogToCore everywhere else.
func DatalogToCoreNoFlip(p *datalog.Program) (*core.Program, algebra.DB, error) {
	return datalogToCore(p, false)
}

func datalogToCore(p *datalog.Program, useFlip bool) (*core.Program, algebra.DB, error) {
	if err := datalog.CheckProgramSafe(p); err != nil {
		return nil, nil, err
	}
	arities, err := Arities(p)
	if err != nil {
		return nil, nil, err
	}
	db, idbFacts, rules, err := SplitProgram(p)
	if err != nil {
		return nil, nil, err
	}
	relOf := func(pred string) (algebra.Expr, error) {
		return algebra.Rel{Name: pred}, nil
	}
	byHead := map[string][]datalog.Rule{}
	var headOrder []string
	for _, r := range rules {
		if _, ok := byHead[r.Head.Pred]; !ok {
			headOrder = append(headOrder, r.Head.Pred)
		}
		byHead[r.Head.Pred] = append(byHead[r.Head.Pred], r)
	}
	// Predicates that only have IDB facts but no rules still need a def.
	for pred := range idbFacts {
		if _, ok := byHead[pred]; !ok {
			headOrder = append(headOrder, pred)
		}
	}
	sort.Strings(headOrder)

	prog := &core.Program{}
	for _, pred := range headOrder {
		var body algebra.Expr
		if fs := idbFacts[pred]; len(fs) > 0 {
			body = algebra.Lit{Set: FactsToSet(fs)}
		}
		for _, r := range byHead[pred] {
			re, err := ruleExprOpt(r, arities, relOf, useFlip)
			if err != nil {
				return nil, nil, err
			}
			if body == nil {
				body = re
			} else {
				body = algebra.Union{L: body, R: re}
			}
		}
		if body == nil {
			body = algebra.EmptyLit
		}
		prog.Defs = append(prog.Defs, core.Def{Name: pred, Body: body})
	}
	emitTranslate("dlog2core", len(p.Rules), len(prog.Defs), 0)
	return prog, db, nil
}

// StratifiedToPositiveIFP translates a stratified safe program into a
// positive IFP-algebra program: a core.Program with *no recursive
// definitions*, where all recursion happens inside IFP operators whose
// variables occur only positively (the constructive direction of Theorem
// 4.3). Each stratum becomes one IFP over a tagged union of its predicates'
// rule expressions; negated predicates always belong to lower strata and are
// referenced as already-defined constants.
func StratifiedToPositiveIFP(p *datalog.Program) (*core.Program, algebra.DB, error) {
	if err := datalog.CheckProgramSafe(p); err != nil {
		return nil, nil, err
	}
	arities, err := Arities(p)
	if err != nil {
		return nil, nil, err
	}
	stratumOf, err := datalog.Stratify(p)
	if err != nil {
		return nil, nil, err
	}
	db, idbFacts, rules, err := SplitProgram(p)
	if err != nil {
		return nil, nil, err
	}
	isIDB := map[string]bool{}
	for _, r := range rules {
		isIDB[r.Head.Pred] = true
	}
	for pred := range idbFacts {
		isIDB[pred] = true
	}
	maxStratum := 0
	var idbPreds []string
	for pred := range isIDB {
		idbPreds = append(idbPreds, pred)
		if s := stratumOf[pred]; s > maxStratum {
			maxStratum = s
		}
	}
	sort.Strings(idbPreds)

	prog := &core.Program{}
	for s := 0; s <= maxStratum; s++ {
		var stratumPreds []string
		for _, pred := range idbPreds {
			if stratumOf[pred] == s {
				stratumPreds = append(stratumPreds, pred)
			}
		}
		if len(stratumPreds) == 0 {
			continue
		}
		wName := "w" + strconv.Itoa(s) + "__"
		stratumName := "stratum" + strconv.Itoa(s) + "__"
		inStratum := map[string]bool{}
		for _, pred := range stratumPreds {
			inStratum[pred] = true
		}
		// untag extracts the relation of pred from the tagged stratum set.
		untag := func(of algebra.Expr, pred string) algebra.Expr {
			sel := algebra.Select{
				Of:  of,
				Var: "t",
				Test: algebra.FCmp{Op: algebra.OpEq,
					L: algebra.FField{Of: algebra.FVar{Name: "t"}, Idx: 1},
					R: algebra.FConst{V: value.String(pred)}},
			}
			return algebra.Map{Of: sel, Var: "t", Out: algebra.FField{Of: algebra.FVar{Name: "t"}, Idx: 2}}
		}
		tag := func(e algebra.Expr, pred string) algebra.Expr {
			return algebra.Map{Of: e, Var: "u", Out: algebra.FTuple{Elems: []algebra.FExpr{
				algebra.FConst{V: value.String(pred)},
				algebra.FVar{Name: "u"},
			}}}
		}
		relOf := func(pred string) (algebra.Expr, error) {
			if inStratum[pred] {
				return untag(algebra.Rel{Name: wName}, pred), nil
			}
			// lower-stratum IDB predicates and EDB relations are closed.
			return algebra.Rel{Name: pred}, nil
		}
		var body algebra.Expr
		add := func(e algebra.Expr) {
			if body == nil {
				body = e
			} else {
				body = algebra.Union{L: body, R: e}
			}
		}
		for _, pred := range stratumPreds {
			if fs := idbFacts[pred]; len(fs) > 0 {
				add(tag(algebra.Lit{Set: FactsToSet(fs)}, pred))
			}
		}
		for _, r := range rules {
			if stratumOf[r.Head.Pred] != s {
				continue
			}
			re, err := ruleExpr(r, arities, relOf)
			if err != nil {
				return nil, nil, err
			}
			add(tag(re, r.Head.Pred))
		}
		if body == nil {
			body = algebra.EmptyLit
		}
		prog.Defs = append(prog.Defs, core.Def{Name: stratumName, Body: algebra.IFP{Var: wName, Body: body}})
		for _, pred := range stratumPreds {
			prog.Defs = append(prog.Defs, core.Def{Name: pred, Body: untag(algebra.Rel{Name: stratumName}, pred)})
		}
	}
	emitTranslate("strat2ifp", len(p.Rules), len(prog.Defs), 0)
	return prog, db, nil
}

// unitSet is {()}: the environment of a rule before any variable is bound.
var unitSet = value.NewSet(value.NewTuple())

// ruleExpr compiles one safe rule into its simulation expression: an algebra
// expression computing the head tuples derivable by a single application of
// the rule, given relation expressions for the body predicates (relOf).
func ruleExpr(r datalog.Rule, arities map[string]int, relOf func(pred string) (algebra.Expr, error)) (algebra.Expr, error) {
	return ruleExprOpt(r, arities, relOf, true)
}

func ruleExprOpt(r datalog.Rule, arities map[string]int, relOf func(pred string) (algebra.Expr, error), useFlip bool) (algebra.Expr, error) {
	plan, err := datalog.PlanRule(r)
	if err != nil {
		return nil, err
	}
	env := ruleEnv{
		cur:     algebra.Expr(algebra.Lit{Set: unitSet}),
		varIdx:  map[datalog.Var]int{},
		useFlip: useFlip,
	}
	for _, st := range plan.Steps {
		switch st.Kind {
		case datalog.StepMatch:
			if err := env.match(st.Atom, arities, relOf, false); err != nil {
				return nil, err
			}
		case datalog.StepAssign:
			fe, err := env.termFExpr(st.Term, algebra.FVar{Name: "x"})
			if err != nil {
				return nil, err
			}
			env.extend(st.AssignVar, fe)
		case datalog.StepTest:
			x := algebra.FVar{Name: "x"}
			l, err := env.termFExpr(st.Cmp.L, x)
			if err != nil {
				return nil, err
			}
			rt, err := env.termFExpr(st.Cmp.R, x)
			if err != nil {
				return nil, err
			}
			env.cur = algebra.Select{Of: env.cur, Var: "x", Test: algebra.FCmp{Op: cmpOp(st.Cmp.Op), L: l, R: rt}}
		default:
			panic("translate: unknown plan step")
		}
	}
	for _, na := range plan.Negs {
		if err := env.match(na, arities, relOf, true); err != nil {
			return nil, err
		}
	}
	// Head projection.
	x := algebra.FVar{Name: "x"}
	var out algebra.FExpr
	switch len(r.Head.Args) {
	case 1:
		fe, err := env.termFExpr(r.Head.Args[0], x)
		if err != nil {
			return nil, err
		}
		out = fe
	default:
		elems := make([]algebra.FExpr, len(r.Head.Args))
		for i, a := range r.Head.Args {
			fe, err := env.termFExpr(a, x)
			if err != nil {
				return nil, err
			}
			elems[i] = fe
		}
		out = algebra.FTuple{Elems: elems}
	}
	return algebra.Map{Of: env.cur, Var: "x", Out: out}, nil
}

// ruleEnv tracks the compilation state of one rule body: cur is an
// expression whose elements are flat tuples of the bound variables' values,
// in binding order (varIdx gives each variable's 1-based position).
type ruleEnv struct {
	cur     algebra.Expr
	vars    []datalog.Var
	varIdx  map[datalog.Var]int
	useFlip bool
}

// envField projects the bound variable v out of the environment element.
func (env *ruleEnv) envField(of algebra.FExpr, v datalog.Var) (algebra.FExpr, error) {
	idx, ok := env.varIdx[v]
	if !ok {
		return nil, fmt.Errorf("translate: variable %s used before it is bound", v)
	}
	return algebra.FField{Of: of, Idx: idx}, nil
}

// extend appends a computed field to every environment tuple, binding v.
func (env *ruleEnv) extend(v datalog.Var, fe algebra.FExpr) {
	x := algebra.FVar{Name: "x"}
	elems := make([]algebra.FExpr, 0, len(env.vars)+1)
	for i := range env.vars {
		elems = append(elems, algebra.FField{Of: x, Idx: i + 1})
	}
	elems = append(elems, fe)
	env.cur = algebra.Map{Of: env.cur, Var: "x", Out: algebra.FTuple{Elems: elems}}
	env.vars = append(env.vars, v)
	env.varIdx[v] = len(env.vars)
}

// match joins (or, when negated, subtracts) the atom's relation against the
// environment. Elements of the joined product are pairs p = (envTuple, row).
func (env *ruleEnv) match(a datalog.Atom, arities map[string]int, relOf func(string) (algebra.Expr, error), negated bool) error {
	rel, err := relOf(a.Pred)
	if err != nil {
		return err
	}
	arity := arities[a.Pred]
	p := algebra.FVar{Name: "p"}
	envSide := algebra.FExpr(algebra.FField{Of: p, Idx: 1})
	rowField := func(i int) algebra.FExpr {
		if arity == 1 {
			return algebra.FField{Of: p, Idx: 2}
		}
		return algebra.FField{Of: algebra.FField{Of: p, Idx: 2}, Idx: i}
	}
	var conds []algebra.FExpr
	type newBinding struct {
		v   datalog.Var
		idx int
	}
	var fresh []newBinding
	seenNew := map[datalog.Var]int{}
	for i, arg := range a.Args {
		if v, isVar := arg.(datalog.Var); isVar {
			if _, bound := env.varIdx[v]; bound {
				ef, err := env.envField(envSide, v)
				if err != nil {
					return err
				}
				conds = append(conds, algebra.FCmp{Op: algebra.OpEq, L: rowField(i + 1), R: ef})
				continue
			}
			if prev, dup := seenNew[v]; dup {
				// Repeated fresh variable within the atom: equality between
				// the two row positions.
				conds = append(conds, algebra.FCmp{Op: algebra.OpEq, L: rowField(i + 1), R: rowField(prev + 1)})
				continue
			}
			if negated {
				return fmt.Errorf("translate: negated atom %s binds variable %s (unsafe rule)", a, v)
			}
			seenNew[v] = i
			fresh = append(fresh, newBinding{v: v, idx: i})
			continue
		}
		fe, err := env.termFExprWith(arg, envSide)
		if err != nil {
			return err
		}
		conds = append(conds, algebra.FCmp{Op: algebra.OpEq, L: rowField(i + 1), R: fe})
	}
	left := env.cur
	if negated && env.useFlip {
		// The env copy inside the subtrahend must be read at the same
		// polarity as the outer occurrence; see algebra.Flip.
		left = algebra.Flip{E: env.cur}
	}
	joined := algebra.Expr(algebra.Product{L: left, R: rel})
	if len(conds) > 0 {
		test := conds[0]
		for _, c := range conds[1:] {
			test = algebra.FAnd{L: test, R: c}
		}
		joined = algebra.Select{Of: joined, Var: "p", Test: test}
	}
	if negated {
		// Subtract the environments that match: env' = env − π_env(joined).
		matched := algebra.Map{Of: joined, Var: "p", Out: algebra.FField{Of: p, Idx: 1}}
		env.cur = algebra.Diff{L: env.cur, R: matched}
		return nil
	}
	// Project to the extended environment tuple.
	elems := make([]algebra.FExpr, 0, len(env.vars)+len(fresh))
	for i := range env.vars {
		elems = append(elems, algebra.FField{Of: envSide, Idx: i + 1})
	}
	for _, nb := range fresh {
		elems = append(elems, rowField(nb.idx+1))
	}
	env.cur = algebra.Map{Of: joined, Var: "p", Out: algebra.FTuple{Elems: elems}}
	for _, nb := range fresh {
		env.vars = append(env.vars, nb.v)
		env.varIdx[nb.v] = len(env.vars)
	}
	return nil
}

// termFExpr compiles a deductive term into an element-level expression over
// the environment element x (a flat tuple of bound variables).
func (env *ruleEnv) termFExpr(t datalog.Term, x algebra.FExpr) (algebra.FExpr, error) {
	return env.termFExprWith(t, x)
}

func (env *ruleEnv) termFExprWith(t datalog.Term, envTuple algebra.FExpr) (algebra.FExpr, error) {
	switch tt := t.(type) {
	case datalog.Var:
		return env.envField(envTuple, tt)
	case datalog.Const:
		return algebra.FConst{V: tt.V}, nil
	case datalog.Apply:
		if datalog.IsGroundTerm(tt) {
			v, err := datalog.EvalTerm(tt, nil)
			if err != nil {
				return nil, err
			}
			return algebra.FConst{V: v}, nil
		}
		args := make([]algebra.FExpr, len(tt.Args))
		for i, a := range tt.Args {
			fe, err := env.termFExprWith(a, envTuple)
			if err != nil {
				return nil, err
			}
			args[i] = fe
		}
		return applyFExpr(tt.Fn, args, tt)
	default:
		panic(fmt.Sprintf("translate: unknown term %T", t))
	}
}

// applyFExpr maps an interpreted function symbol to its element-level
// counterpart.
func applyFExpr(fn string, args []algebra.FExpr, orig datalog.Apply) (algebra.FExpr, error) {
	arith := func(op algebra.ArithOp) (algebra.FExpr, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("translate: %s expects 2 arguments in %s", fn, orig)
		}
		return algebra.FArith{Op: op, L: args[0], R: args[1]}, nil
	}
	cmp := func(op algebra.CmpOp) (algebra.FExpr, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("translate: %s expects 2 arguments in %s", fn, orig)
		}
		return algebra.FCmp{Op: op, L: args[0], R: args[1]}, nil
	}
	switch fn {
	case "plus":
		return arith(algebra.OpPlus)
	case "minus":
		return arith(algebra.OpMinus)
	case "times":
		return arith(algebra.OpTimes)
	case "mod":
		return arith(algebra.OpMod)
	case "succ":
		if len(args) != 1 {
			return nil, fmt.Errorf("translate: succ expects 1 argument in %s", orig)
		}
		return algebra.FArith{Op: algebra.OpPlus, L: args[0], R: algebra.FConst{V: value.Int(1)}}, nil
	case "pred":
		if len(args) != 1 {
			return nil, fmt.Errorf("translate: pred expects 1 argument in %s", orig)
		}
		return algebra.FArith{Op: algebra.OpMinus, L: args[0], R: algebra.FConst{V: value.Int(1)}}, nil
	case "tup":
		return algebra.FTuple{Elems: args}, nil
	case "fst":
		if len(args) != 1 {
			return nil, fmt.Errorf("translate: fst expects 1 argument in %s", orig)
		}
		return algebra.FField{Of: args[0], Idx: 1}, nil
	case "snd":
		if len(args) != 1 {
			return nil, fmt.Errorf("translate: snd expects 1 argument in %s", orig)
		}
		return algebra.FField{Of: args[0], Idx: 2}, nil
	case "field":
		if len(args) != 2 {
			return nil, fmt.Errorf("translate: field expects 2 arguments in %s", orig)
		}
		idxConst, ok := orig.Args[1].(datalog.Const)
		if !ok {
			return nil, fmt.Errorf("translate: field index must be a constant in %s", orig)
		}
		idx, ok := idxConst.V.(value.Int)
		if !ok {
			return nil, fmt.Errorf("translate: field index must be an integer in %s", orig)
		}
		return algebra.FField{Of: args[0], Idx: int(idx)}, nil
	case "eq":
		return cmp(algebra.OpEq)
	case "ne":
		return cmp(algebra.OpNe)
	case "lt":
		return cmp(algebra.OpLt)
	case "le":
		return cmp(algebra.OpLe)
	case "gt":
		return cmp(algebra.OpGt)
	case "ge":
		return cmp(algebra.OpGe)
	case "band":
		if len(args) != 2 {
			return nil, fmt.Errorf("translate: band expects 2 arguments in %s", orig)
		}
		return algebra.FAnd{L: args[0], R: args[1]}, nil
	case "bor":
		if len(args) != 2 {
			return nil, fmt.Errorf("translate: bor expects 2 arguments in %s", orig)
		}
		return algebra.FOr{L: args[0], R: args[1]}, nil
	case "bnot":
		if len(args) != 1 {
			return nil, fmt.Errorf("translate: bnot expects 1 argument in %s", orig)
		}
		return algebra.FNot{E: args[0]}, nil
	case "ismem":
		if len(args) != 2 {
			return nil, fmt.Errorf("translate: ismem expects 2 arguments in %s", orig)
		}
		return algebra.FMem{Elem: args[0], Set: args[1]}, nil
	default:
		return nil, fmt.Errorf("translate: function %q has no algebraic counterpart (set constructors are not translatable)", fn)
	}
}

func cmpOp(op datalog.CmpOp) algebra.CmpOp {
	switch op {
	case datalog.OpEq:
		return algebra.OpEq
	case datalog.OpNe:
		return algebra.OpNe
	case datalog.OpLt:
		return algebra.OpLt
	case datalog.OpLe:
		return algebra.OpLe
	case datalog.OpGt:
		return algebra.OpGt
	case datalog.OpGe:
		return algebra.OpGe
	default:
		panic(fmt.Sprintf("translate: unknown comparison %v", op))
	}
}
