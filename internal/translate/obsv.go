package translate

import "algrec/internal/obsv"

// emitTranslate reports one completed translation to the process-default
// collector. op is the obsv.TranslateStats operation name, in/out the sizes
// of the source and result objects (rule counts for deductive programs,
// definition counts for algebra= programs), steps the step-index bound where
// one applies. A nil default collector makes this a single branch.
func emitTranslate(op string, in, out, steps int) {
	if c := obsv.Default(); c != nil {
		c.Translate(obsv.TranslateStats{Op: op, InSize: in, OutSize: out, Steps: steps})
	}
}
