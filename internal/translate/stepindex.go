package translate

import (
	"algrec/internal/datalog"
)

// StepIndex implements the transformation of Proposition 5.2: it produces a
// program P' such that evaluating P' under the valid (or well-founded)
// semantics yields, in the unprimed predicates, exactly the inflationary
// fixpoint of P. Following the paper's proof:
//
//	(i)   every predicate R gains a primed, step-indexed variant R';
//	(ii)  every ground fact R(ā) becomes R'(0, ā);
//	(iii) every rule ...(¬)Q(x̄)... → R(ȳ) becomes
//	      ...(¬)Q'(i, x̄)... → R'(i+1, ȳ);
//	(iv)  for every R': R'(i, x̄) → R'(i+1, x̄) and R'(i, x̄) → R(x̄).
//
// "At each step of the derivation, new facts can only be derived using facts
// with smaller indexes" — the index makes the program locally stratified, so
// its valid model is two-valued and replays the inflationary computation.
//
// The paper's P' ranges the index over all naturals; an executable program
// needs the guard i < bound on every index increment, since the copy rule
// (iv) would otherwise generate atoms forever. Any bound at least the number
// of inflationary steps of P is exact; Engine.Inflationary reports that
// number, and StepIndexAuto uses it.
func StepIndex(p *datalog.Program, bound int64) *datalog.Program {
	out := &datalog.Program{}
	iv := datalog.Var("I__")
	primed := func(pred string) string { return pred + "__s" }
	primedAtom := func(a datalog.Atom, idx datalog.Term) datalog.Atom {
		args := make([]datalog.Term, 0, len(a.Args)+1)
		args = append(args, idx)
		args = append(args, a.Args...)
		return datalog.Atom{Pred: primed(a.Pred), Args: args}
	}
	succI := datalog.Apply{Fn: "plus", Args: []datalog.Term{iv, datalog.CInt(1)}}
	guard := datalog.Cmp(datalog.OpLt, iv, datalog.CInt(bound))

	preds := map[string]int{}
	for _, r := range p.Rules {
		preds[r.Head.Pred] = len(r.Head.Args)
		for _, l := range r.Body {
			if la, ok := l.(datalog.LitAtom); ok {
				preds[la.Atom.Pred] = len(la.Atom.Args)
			}
		}
	}

	for _, r := range p.Rules {
		if r.IsFact() {
			// (ii): R(ā) → R'(0, ā).
			out.Rules = append(out.Rules, datalog.Rule{Head: primedAtom(r.Head, datalog.CInt(0))})
			continue
		}
		// (iii): prime every body atom at index i, the head at i+1, guarded.
		var body []datalog.Literal
		sawPos := false
		for _, l := range r.Body {
			switch ll := l.(type) {
			case datalog.LitAtom:
				if !ll.Neg {
					sawPos = true
				}
				body = append(body, datalog.LitAtom{Neg: ll.Neg, Atom: primedAtom(ll.Atom, iv)})
			case datalog.LitCmp:
				body = append(body, ll)
			}
		}
		if !sawPos {
			// Negated atoms do not bind the index; a rule whose body has no
			// positive atom can only ever fire at the first inflationary
			// step (every negation holds against the empty step-0 state), so
			// pin the index to 0.
			body = append([]datalog.Literal{datalog.Cmp(datalog.OpEq, iv, datalog.CInt(0))}, body...)
		}
		body = append(body, guard)
		out.Rules = append(out.Rules, datalog.Rule{Head: primedAtom(r.Head, succI), Body: body})
	}

	// (iv): accumulation and projection rules for every predicate.
	predNames := make([]string, 0, len(preds))
	for q := range preds {
		predNames = append(predNames, q)
	}
	// deterministic order
	for i := 0; i < len(predNames); i++ {
		for j := i + 1; j < len(predNames); j++ {
			if predNames[j] < predNames[i] {
				predNames[i], predNames[j] = predNames[j], predNames[i]
			}
		}
	}
	for _, q := range predNames {
		arity := preds[q]
		vars := make([]datalog.Term, arity)
		for k := range vars {
			vars[k] = datalog.Var("X" + string(rune('A'+k%26)) + itoa(k))
		}
		pa := datalog.Atom{Pred: primed(q), Args: append([]datalog.Term{iv}, vars...)}
		// R'(i, x̄), i < bound → R'(i+1, x̄)
		out.Rules = append(out.Rules, datalog.Rule{
			Head: datalog.Atom{Pred: primed(q), Args: append([]datalog.Term{succI}, vars...)},
			Body: []datalog.Literal{datalog.LitAtom{Atom: pa}, guard},
		})
		// R'(i, x̄) → R(x̄)
		out.Rules = append(out.Rules, datalog.Rule{
			Head: datalog.Atom{Pred: q, Args: vars},
			Body: []datalog.Literal{datalog.LitAtom{Atom: pa}},
		})
	}
	emitTranslate("stepindex", len(p.Rules), len(out.Rules), int(bound))
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
