package translate

import (
	"fmt"
	"strconv"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/datalog"
	"algrec/internal/value"
)

// This file implements the algebra-to-deduction direction of Section 5: "For
// every sub expression in the query a new predicate name is introduced, and a
// derived relation is defined." Every introduced predicate is unary — its
// argument is the set element, which may itself be a tuple. Subtraction
// becomes negation of the corresponding predicate; an IFP expression becomes
// recursion through the result predicate, which is faithful to the original
// query under the *inflationary* semantics (Proposition 5.1, Example 4) and
// may differ under the valid semantics — exactly the paper's point.

type algTranslator struct {
	prog *datalog.Program
	n    int
}

func (t *algTranslator) fresh() string {
	t.n++
	return "e" + strconv.Itoa(t.n) + "_"
}

func (t *algTranslator) addRule(r datalog.Rule) { t.prog.Rules = append(t.prog.Rules, r) }

// AlgebraToDatalog translates an algebra or IFP-algebra expression into a
// deductive program whose predicate result holds exactly the elements of the
// expression's value when evaluated under the inflationary semantics
// (Proposition 5.1). env maps relation names free in e to predicate names;
// names not in env map to themselves. The database itself is shipped
// separately (see DBFacts). Call nodes are rejected: inline algebra=
// definitions first or use CoreToDatalog.
func AlgebraToDatalog(e algebra.Expr, result string, env map[string]string) (*datalog.Program, error) {
	t := &algTranslator{prog: &datalog.Program{}}
	full := map[string]string{}
	for k, v := range env {
		full[k] = v
	}
	p, err := t.translate(e, full)
	if err != nil {
		return nil, err
	}
	x := datalog.Var("X")
	t.addRule(datalog.Rule{
		Head: datalog.Atom{Pred: result, Args: []datalog.Term{x}},
		Body: []datalog.Literal{datalog.Pos(p, x)},
	})
	emitTranslate("alg2dlog", t.n, len(t.prog.Rules), 0)
	return t.prog, nil
}

// CoreToDatalog translates an algebra= program into a deductive program
// (Proposition 5.4): each defined constant becomes a predicate of the same
// name, and both sides then "interpret subtraction and negation (resp.)
// using valid semantics". The program is inlined first, so parameterized
// definitions disappear and recursion goes through the constants'
// predicates.
func CoreToDatalog(p *core.Program) (*datalog.Program, error) {
	q, err := p.Inline()
	if err != nil {
		return nil, err
	}
	t := &algTranslator{prog: &datalog.Program{}}
	env := map[string]string{}
	for _, d := range q.Defs {
		env[d.Name] = d.Name
	}
	x := datalog.Var("X")
	for _, d := range q.Defs {
		bp, err := t.translate(d.Body, env)
		if err != nil {
			return nil, fmt.Errorf("translate: definition of %q: %w", d.Name, err)
		}
		t.addRule(datalog.Rule{
			Head: datalog.Atom{Pred: d.Name, Args: []datalog.Term{x}},
			Body: []datalog.Literal{datalog.Pos(bp, x)},
		})
	}
	emitTranslate("core2dlog", len(q.Defs), len(t.prog.Rules), 0)
	return t.prog, nil
}

func (t *algTranslator) translate(e algebra.Expr, env map[string]string) (string, error) {
	x := datalog.Var("X")
	y := datalog.Var("Y")
	switch ee := e.(type) {
	case algebra.Rel:
		if p, ok := env[ee.Name]; ok {
			return p, nil
		}
		return ee.Name, nil
	case algebra.Lit:
		p := t.fresh()
		for _, v := range ee.Set.Elems() {
			t.addRule(datalog.Rule{Head: datalog.Atom{Pred: p, Args: []datalog.Term{datalog.C(v)}}})
		}
		return p, nil
	case algebra.Union:
		l, err := t.translate(ee.L, env)
		if err != nil {
			return "", err
		}
		r, err := t.translate(ee.R, env)
		if err != nil {
			return "", err
		}
		p := t.fresh()
		t.addRule(datalog.Rule{Head: datalog.Atom{Pred: p, Args: []datalog.Term{x}}, Body: []datalog.Literal{datalog.Pos(l, x)}})
		t.addRule(datalog.Rule{Head: datalog.Atom{Pred: p, Args: []datalog.Term{x}}, Body: []datalog.Literal{datalog.Pos(r, x)}})
		return p, nil
	case algebra.Diff:
		// The Flip-annotated anti-join — Diff(L, π₁(σ(Flip(L) × Q))), the
		// shape DatalogToCore emits for a negated atom — has an exact
		// fact-level image: a single negated atom over Q with the row value
		// computed from the element. This restores the correlation that the
		// generic subexpression-per-predicate translation would lose:
		// negation would otherwise range over a predicate chain containing
		// L itself, putting recursive programs into a negative cycle the
		// original never had.
		if aj, ok := antiJoinParts(ee); ok {
			pl, err := t.translate(aj.env, env)
			if err != nil {
				return "", err
			}
			pq, err := t.translate(aj.q, env)
			if err != nil {
				return "", err
			}
			rowTerm, err := fexprToTerm(aj.row, map[string]datalog.Term{antiJoinElemVar: x})
			if err != nil {
				return "", err
			}
			p := t.fresh()
			t.addRule(datalog.Rule{
				Head: datalog.Atom{Pred: p, Args: []datalog.Term{x}},
				Body: []datalog.Literal{
					datalog.Pos(pl, x),
					datalog.LitAtom{Neg: true, Atom: datalog.Atom{Pred: pq, Args: []datalog.Term{rowTerm}}},
				},
			})
			return p, nil
		}
		l, err := t.translate(ee.L, env)
		if err != nil {
			return "", err
		}
		r, err := t.translate(ee.R, env)
		if err != nil {
			return "", err
		}
		p := t.fresh()
		// "E1 − E2 is represented by a rule R1(x), ¬R2(x) → R(x)."
		t.addRule(datalog.Rule{
			Head: datalog.Atom{Pred: p, Args: []datalog.Term{x}},
			Body: []datalog.Literal{datalog.Pos(l, x), datalog.Neg(r, x)},
		})
		return p, nil
	case algebra.Product:
		l, err := t.translate(ee.L, env)
		if err != nil {
			return "", err
		}
		r, err := t.translate(ee.R, env)
		if err != nil {
			return "", err
		}
		p := t.fresh()
		t.addRule(datalog.Rule{
			Head: datalog.Atom{Pred: p, Args: []datalog.Term{datalog.Apply{Fn: "tup", Args: []datalog.Term{x, y}}}},
			Body: []datalog.Literal{datalog.Pos(l, x), datalog.Pos(r, y)},
		})
		return p, nil
	case algebra.Select:
		of, err := t.translate(ee.Of, env)
		if err != nil {
			return "", err
		}
		test, err := fexprToTerm(ee.Test, map[string]datalog.Term{ee.Var: x})
		if err != nil {
			return "", err
		}
		p := t.fresh()
		t.addRule(datalog.Rule{
			Head: datalog.Atom{Pred: p, Args: []datalog.Term{x}},
			Body: []datalog.Literal{
				datalog.Pos(of, x),
				datalog.Cmp(datalog.OpEq, test, datalog.C(value.True)),
			},
		})
		return p, nil
	case algebra.Map:
		of, err := t.translate(ee.Of, env)
		if err != nil {
			return "", err
		}
		out, err := fexprToTerm(ee.Out, map[string]datalog.Term{ee.Var: x})
		if err != nil {
			return "", err
		}
		p := t.fresh()
		t.addRule(datalog.Rule{
			Head: datalog.Atom{Pred: p, Args: []datalog.Term{y}},
			Body: []datalog.Literal{datalog.Pos(of, x), datalog.Cmp(datalog.OpEq, y, out)},
		})
		return p, nil
	case algebra.IFP:
		// "A fixed point expression IFP_exp is translated by first
		// translating exp and then introducing recursion in the deduction."
		p := t.fresh()
		inner := map[string]string{}
		for k, v := range env {
			inner[k] = v
		}
		inner[ee.Var] = p
		b, err := t.translate(ee.Body, inner)
		if err != nil {
			return "", err
		}
		t.addRule(datalog.Rule{
			Head: datalog.Atom{Pred: p, Args: []datalog.Term{x}},
			Body: []datalog.Literal{datalog.Pos(b, x)},
		})
		return p, nil
	case algebra.Flip:
		// The fact-level valid semantics is already exact; the polarity
		// annotation is transparent here.
		return t.translate(ee.E, env)
	case algebra.Call:
		return "", fmt.Errorf("translate: unexpanded call to %q (inline the algebra= program first or use CoreToDatalog)", ee.Name)
	default:
		panic(fmt.Sprintf("translate: unknown Expr %T", e))
	}
}

// fexprToTerm compiles an element-level expression to a deductive term over
// the interpreted function symbols; boolean structure compiles to the
// boolean-valued builtins band/bor/bnot/eq/... so that a selection test
// becomes the single guard literal `term = true`.
func fexprToTerm(e algebra.FExpr, vars map[string]datalog.Term) (datalog.Term, error) {
	switch ee := e.(type) {
	case algebra.FVar:
		tm, ok := vars[ee.Name]
		if !ok {
			return nil, fmt.Errorf("translate: unbound element variable %q", ee.Name)
		}
		return tm, nil
	case algebra.FConst:
		return datalog.C(ee.V), nil
	case algebra.FField:
		of, err := fexprToTerm(ee.Of, vars)
		if err != nil {
			return nil, err
		}
		return datalog.Apply{Fn: "field", Args: []datalog.Term{of, datalog.CInt(int64(ee.Idx))}}, nil
	case algebra.FTuple:
		args := make([]datalog.Term, len(ee.Elems))
		for i, el := range ee.Elems {
			a, err := fexprToTerm(el, vars)
			if err != nil {
				return nil, err
			}
			args[i] = a
		}
		return datalog.Apply{Fn: "tup", Args: args}, nil
	case algebra.FCmp:
		var fn string
		switch ee.Op {
		case algebra.OpEq:
			fn = "eq"
		case algebra.OpNe:
			fn = "ne"
		case algebra.OpLt:
			fn = "lt"
		case algebra.OpLe:
			fn = "le"
		case algebra.OpGt:
			fn = "gt"
		case algebra.OpGe:
			fn = "ge"
		default:
			return nil, fmt.Errorf("translate: unknown comparison %v", ee.Op)
		}
		return apply2(fn, ee.L, ee.R, vars)
	case algebra.FArith:
		var fn string
		switch ee.Op {
		case algebra.OpPlus:
			fn = "plus"
		case algebra.OpMinus:
			fn = "minus"
		case algebra.OpTimes:
			fn = "times"
		case algebra.OpMod:
			fn = "mod"
		default:
			return nil, fmt.Errorf("translate: unknown arithmetic operator %v", ee.Op)
		}
		return apply2(fn, ee.L, ee.R, vars)
	case algebra.FAnd:
		return apply2("band", ee.L, ee.R, vars)
	case algebra.FOr:
		return apply2("bor", ee.L, ee.R, vars)
	case algebra.FNot:
		a, err := fexprToTerm(ee.E, vars)
		if err != nil {
			return nil, err
		}
		return datalog.Apply{Fn: "bnot", Args: []datalog.Term{a}}, nil
	case algebra.FMem:
		return apply2("ismem", ee.Elem, ee.Set, vars)
	default:
		panic(fmt.Sprintf("translate: unknown FExpr %T", e))
	}
}

func apply2(fn string, l, r algebra.FExpr, vars map[string]datalog.Term) (datalog.Term, error) {
	lt, err := fexprToTerm(l, vars)
	if err != nil {
		return nil, err
	}
	rt, err := fexprToTerm(r, vars)
	if err != nil {
		return nil, err
	}
	return datalog.Apply{Fn: fn, Args: []datalog.Term{lt, rt}}, nil
}
