package translate

import (
	"fmt"
	"strconv"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/datalog"
	"algrec/internal/value"
)

// This file implements the algebra-to-deduction direction of Section 5: "For
// every sub expression in the query a new predicate name is introduced, and a
// derived relation is defined." Every introduced predicate is unary — its
// argument is the set element, which may itself be a tuple. Subtraction
// becomes negation of the corresponding predicate; an IFP expression becomes
// recursion through the result predicate, which is faithful to the original
// query under the *inflationary* semantics (Proposition 5.1, Example 4) and
// may differ under the valid semantics — exactly the paper's point.

type algTranslator struct {
	prog *datalog.Program
	n    int

	// Staged mode (algebraToDatalogStaged): each IFP operator is
	// step-indexed individually, per Proposition 5.2, instead of relying on
	// the inflationary reading of flat recursion. idx holds the index
	// variables of the enclosing IFPs; indexed records how many of those
	// leading index arguments each introduced predicate carries.
	staged  bool
	bound   int64
	idx     []datalog.Var
	indexed map[string]int
	hasDom  bool
}

func (t *algTranslator) fresh() string {
	t.n++
	return "e" + strconv.Itoa(t.n) + "_"
}

// freshAt introduces a predicate carrying the current index prefix.
func (t *algTranslator) freshAt() string {
	p := t.fresh()
	if len(t.idx) > 0 {
		t.indexed[p] = len(t.idx)
	}
	return p
}

func (t *algTranslator) addRule(r datalog.Rule) { t.prog.Rules = append(t.prog.Rules, r) }

// atom builds an atom over pred with the element term, prepending the index
// prefix the predicate carries. Outside staged mode this is a plain unary
// atom.
func (t *algTranslator) atom(pred string, elem datalog.Term) datalog.Atom {
	d := t.indexed[pred]
	args := make([]datalog.Term, 0, d+1)
	for _, iv := range t.idx[:d] {
		args = append(args, iv)
	}
	args = append(args, elem)
	return datalog.Atom{Pred: pred, Args: args}
}

func (t *algTranslator) pos(pred string, elem datalog.Term) datalog.Literal {
	return datalog.LitAtom{Atom: t.atom(pred, elem)}
}

func (t *algTranslator) neg(pred string, elem datalog.Term) datalog.Literal {
	return datalog.LitAtom{Neg: true, Atom: t.atom(pred, elem)}
}

// stagedIdxDom is the index-domain predicate of staged translations: one
// fact per step index, binding index variables that the rule body does not
// bind otherwise.
const stagedIdxDom = "idxdom_"

// guardIdx appends index-domain atoms binding every enclosing index
// variable, making staged rules safe regardless of what the body binds.
func (t *algTranslator) guardIdx(body []datalog.Literal) []datalog.Literal {
	if len(t.idx) == 0 {
		return body
	}
	if !t.hasDom {
		t.hasDom = true
		for i := int64(0); i <= t.bound; i++ {
			t.addRule(datalog.Rule{Head: datalog.Atom{Pred: stagedIdxDom, Args: []datalog.Term{datalog.CInt(i)}}})
		}
	}
	out := make([]datalog.Literal, 0, len(body)+len(t.idx))
	for _, iv := range t.idx {
		out = append(out, datalog.LitAtom{Atom: datalog.Atom{Pred: stagedIdxDom, Args: []datalog.Term{iv}}})
	}
	return append(out, body...)
}

// chainRule emits one rule of a subexpression predicate: index prefix on the
// head, index-domain guards on the body.
func (t *algTranslator) chainRule(pred string, head datalog.Term, body ...datalog.Literal) {
	t.addRule(datalog.Rule{Head: t.atom(pred, head), Body: t.guardIdx(body)})
}

// AlgebraToDatalog translates an algebra or IFP-algebra expression into a
// deductive program whose predicate result holds exactly the elements of the
// expression's value when evaluated under the inflationary semantics
// (Proposition 5.1). env maps relation names free in e to predicate names;
// names not in env map to themselves. The database itself is shipped
// separately (see DBFacts). Call nodes are rejected: inline algebra=
// definitions first or use CoreToDatalog.
func AlgebraToDatalog(e algebra.Expr, result string, env map[string]string) (*datalog.Program, error) {
	t := &algTranslator{prog: &datalog.Program{}}
	full := map[string]string{}
	for k, v := range env {
		full[k] = v
	}
	p, err := t.translate(e, full)
	if err != nil {
		return nil, err
	}
	x := datalog.Var("X")
	t.addRule(datalog.Rule{
		Head: datalog.Atom{Pred: result, Args: []datalog.Term{x}},
		Body: []datalog.Literal{datalog.Pos(p, x)},
	})
	emitTranslate("alg2dlog", t.n, len(t.prog.Rules), 0)
	return t.prog, nil
}

// CoreToDatalog translates an algebra= program into a deductive program
// (Proposition 5.4): each defined constant becomes a predicate of the same
// name, and both sides then "interpret subtraction and negation (resp.)
// using valid semantics". The program is inlined first, so parameterized
// definitions disappear and recursion goes through the constants'
// predicates.
func CoreToDatalog(p *core.Program) (*datalog.Program, error) {
	q, err := p.Inline()
	if err != nil {
		return nil, err
	}
	t := &algTranslator{prog: &datalog.Program{}}
	env := map[string]string{}
	for _, d := range q.Defs {
		env[d.Name] = d.Name
	}
	x := datalog.Var("X")
	for _, d := range q.Defs {
		bp, err := t.translate(d.Body, env)
		if err != nil {
			return nil, fmt.Errorf("translate: definition of %q: %w", d.Name, err)
		}
		t.addRule(datalog.Rule{
			Head: datalog.Atom{Pred: d.Name, Args: []datalog.Term{x}},
			Body: []datalog.Literal{datalog.Pos(bp, x)},
		})
	}
	emitTranslate("core2dlog", len(q.Defs), len(t.prog.Rules), 0)
	return t.prog, nil
}

func (t *algTranslator) translate(e algebra.Expr, env map[string]string) (string, error) {
	x := datalog.Var("X")
	y := datalog.Var("Y")
	switch ee := e.(type) {
	case algebra.Rel:
		if p, ok := env[ee.Name]; ok {
			return p, nil
		}
		return ee.Name, nil
	case algebra.Lit:
		p := t.freshAt()
		for _, v := range ee.Set.Elems() {
			t.chainRule(p, datalog.C(v))
		}
		return p, nil
	case algebra.Union:
		l, err := t.translate(ee.L, env)
		if err != nil {
			return "", err
		}
		r, err := t.translate(ee.R, env)
		if err != nil {
			return "", err
		}
		p := t.freshAt()
		t.chainRule(p, x, t.pos(l, x))
		t.chainRule(p, x, t.pos(r, x))
		return p, nil
	case algebra.Diff:
		// The Flip-annotated anti-join — Diff(L, π₁(σ(Flip(L) × Q))), the
		// shape DatalogToCore emits for a negated atom — has an exact
		// fact-level image: a single negated atom over Q with the row value
		// computed from the element. This restores the correlation that the
		// generic subexpression-per-predicate translation would lose:
		// negation would otherwise range over a predicate chain containing
		// L itself, putting recursive programs into a negative cycle the
		// original never had.
		if aj, ok := antiJoinParts(ee); ok {
			pl, err := t.translate(aj.env, env)
			if err != nil {
				return "", err
			}
			pq, err := t.translate(aj.q, env)
			if err != nil {
				return "", err
			}
			rowTerm, err := fexprToTerm(aj.row, map[string]datalog.Term{antiJoinElemVar: x})
			if err != nil {
				return "", err
			}
			p := t.freshAt()
			t.chainRule(p, x, t.pos(pl, x), t.neg(pq, rowTerm))
			return p, nil
		}
		l, err := t.translate(ee.L, env)
		if err != nil {
			return "", err
		}
		r, err := t.translate(ee.R, env)
		if err != nil {
			return "", err
		}
		p := t.freshAt()
		// "E1 − E2 is represented by a rule R1(x), ¬R2(x) → R(x)."
		t.chainRule(p, x, t.pos(l, x), t.neg(r, x))
		return p, nil
	case algebra.Product:
		l, err := t.translate(ee.L, env)
		if err != nil {
			return "", err
		}
		r, err := t.translate(ee.R, env)
		if err != nil {
			return "", err
		}
		p := t.freshAt()
		t.chainRule(p, datalog.Apply{Fn: "tup", Args: []datalog.Term{x, y}}, t.pos(l, x), t.pos(r, y))
		return p, nil
	case algebra.Select:
		of, err := t.translate(ee.Of, env)
		if err != nil {
			return "", err
		}
		test, err := fexprToTerm(ee.Test, map[string]datalog.Term{ee.Var: x})
		if err != nil {
			return "", err
		}
		p := t.freshAt()
		t.chainRule(p, x, t.pos(of, x), datalog.Cmp(datalog.OpEq, test, datalog.C(value.True)))
		return p, nil
	case algebra.Map:
		of, err := t.translate(ee.Of, env)
		if err != nil {
			return "", err
		}
		out, err := fexprToTerm(ee.Out, map[string]datalog.Term{ee.Var: x})
		if err != nil {
			return "", err
		}
		p := t.freshAt()
		t.chainRule(p, y, t.pos(of, x), datalog.Cmp(datalog.OpEq, y, out))
		return p, nil
	case algebra.IFP:
		if t.staged {
			return t.translateIFPStaged(ee, env)
		}
		// "A fixed point expression IFP_exp is translated by first
		// translating exp and then introducing recursion in the deduction."
		p := t.freshAt()
		inner := map[string]string{}
		for k, v := range env {
			inner[k] = v
		}
		inner[ee.Var] = p
		b, err := t.translate(ee.Body, inner)
		if err != nil {
			return "", err
		}
		t.chainRule(p, x, t.pos(b, x))
		return p, nil
	case algebra.Flip:
		// The fact-level valid semantics is already exact; the polarity
		// annotation is transparent here.
		return t.translate(ee.E, env)
	case algebra.Call:
		return "", fmt.Errorf("translate: unexpanded call to %q (inline the algebra= program first or use CoreToDatalog)", ee.Name)
	default:
		panic(fmt.Sprintf("translate: unknown Expr %T", e))
	}
}

// translateIFPStaged is the staged-mode IFP case: Proposition 5.2's
// step-index transformation applied to this one operator. The accumulator
// predicate ps carries one more index argument than its surroundings; the
// body is translated with the IFP variable bound to ps, so within one index
// every body predicate reads the accumulator frozen at that index and the
// program stays locally stratified — the valid semantics then replays the
// inflationary iteration exactly, committing none of the transient
// subtraction over-approximations the flat translation commits under the
// inflationary reading.
func (t *algTranslator) translateIFPStaged(ee algebra.IFP, env map[string]string) (string, error) {
	x := datalog.Var("X")
	p := t.freshAt()
	ps := t.fresh()
	t.indexed[ps] = len(t.idx) + 1
	iv := datalog.Var("I" + strconv.Itoa(len(t.idx)+1) + "__")
	t.idx = append(t.idx, iv)
	inner := map[string]string{}
	for k, v := range env {
		inner[k] = v
	}
	inner[ee.Var] = ps
	b, err := t.translate(ee.Body, inner)
	if err != nil {
		return "", err
	}
	succ := datalog.Apply{Fn: "plus", Args: []datalog.Term{iv, datalog.CInt(1)}}
	guard := datalog.Cmp(datalog.OpLt, iv, datalog.CInt(t.bound))
	outer := make([]datalog.Term, 0, len(t.idx)+1)
	for _, v := range t.idx[:len(t.idx)-1] {
		outer = append(outer, v)
	}
	// Step: ps(ī, i+1, x) ← body-at-i(x), i < bound.
	t.addRule(datalog.Rule{
		Head: datalog.Atom{Pred: ps, Args: append(append([]datalog.Term{}, outer...), succ, x)},
		Body: t.guardIdx([]datalog.Literal{t.pos(b, x), guard}),
	})
	// Accumulate: ps(ī, i+1, x) ← ps(ī, i, x), i < bound.
	t.addRule(datalog.Rule{
		Head: datalog.Atom{Pred: ps, Args: append(append([]datalog.Term{}, outer...), succ, x)},
		Body: t.guardIdx([]datalog.Literal{t.pos(ps, x), guard}),
	})
	t.idx = t.idx[:len(t.idx)-1]
	// Project the converged index: p(ī, x) ← ps(ī, bound, x).
	t.chainRule(p, x, datalog.LitAtom{Atom: datalog.Atom{
		Pred: ps, Args: append(append([]datalog.Term{}, outer...), datalog.CInt(t.bound), x),
	}})
	return p, nil
}

// algebraToDatalogStaged is AlgebraToDatalog with every IFP operator
// step-indexed up to bound iterations (Proposition 5.2 applied per
// operator): the resulting program is locally stratified, and its valid
// model computes the expression's value exactly — in result and in every
// chain predicate. bound must be at least the iteration count of every IFP
// in the expression on the intended database; extra index steps are
// harmless (the accumulator just carries its fixpoint forward).
func algebraToDatalogStaged(e algebra.Expr, result string, env map[string]string, bound int64) (*datalog.Program, error) {
	t := &algTranslator{prog: &datalog.Program{}, staged: true, bound: bound, indexed: map[string]int{}}
	full := map[string]string{}
	for k, v := range env {
		full[k] = v
	}
	p, err := t.translate(e, full)
	if err != nil {
		return nil, err
	}
	x := datalog.Var("X")
	t.addRule(datalog.Rule{
		Head: datalog.Atom{Pred: result, Args: []datalog.Term{x}},
		Body: []datalog.Literal{datalog.Pos(p, x)},
	})
	emitTranslate("alg2dlog-staged", t.n, len(t.prog.Rules), int(bound))
	return t.prog, nil
}

// fexprToTerm compiles an element-level expression to a deductive term over
// the interpreted function symbols; boolean structure compiles to the
// boolean-valued builtins band/bor/bnot/eq/... so that a selection test
// becomes the single guard literal `term = true`.
func fexprToTerm(e algebra.FExpr, vars map[string]datalog.Term) (datalog.Term, error) {
	switch ee := e.(type) {
	case algebra.FVar:
		tm, ok := vars[ee.Name]
		if !ok {
			return nil, fmt.Errorf("translate: unbound element variable %q", ee.Name)
		}
		return tm, nil
	case algebra.FConst:
		return datalog.C(ee.V), nil
	case algebra.FField:
		of, err := fexprToTerm(ee.Of, vars)
		if err != nil {
			return nil, err
		}
		return datalog.Apply{Fn: "field", Args: []datalog.Term{of, datalog.CInt(int64(ee.Idx))}}, nil
	case algebra.FTuple:
		args := make([]datalog.Term, len(ee.Elems))
		for i, el := range ee.Elems {
			a, err := fexprToTerm(el, vars)
			if err != nil {
				return nil, err
			}
			args[i] = a
		}
		return datalog.Apply{Fn: "tup", Args: args}, nil
	case algebra.FCmp:
		var fn string
		switch ee.Op {
		case algebra.OpEq:
			fn = "eq"
		case algebra.OpNe:
			fn = "ne"
		case algebra.OpLt:
			fn = "lt"
		case algebra.OpLe:
			fn = "le"
		case algebra.OpGt:
			fn = "gt"
		case algebra.OpGe:
			fn = "ge"
		default:
			return nil, fmt.Errorf("translate: unknown comparison %v", ee.Op)
		}
		return apply2(fn, ee.L, ee.R, vars)
	case algebra.FArith:
		var fn string
		switch ee.Op {
		case algebra.OpPlus:
			fn = "plus"
		case algebra.OpMinus:
			fn = "minus"
		case algebra.OpTimes:
			fn = "times"
		case algebra.OpMod:
			fn = "mod"
		default:
			return nil, fmt.Errorf("translate: unknown arithmetic operator %v", ee.Op)
		}
		return apply2(fn, ee.L, ee.R, vars)
	case algebra.FAnd:
		return apply2("band", ee.L, ee.R, vars)
	case algebra.FOr:
		return apply2("bor", ee.L, ee.R, vars)
	case algebra.FNot:
		a, err := fexprToTerm(ee.E, vars)
		if err != nil {
			return nil, err
		}
		return datalog.Apply{Fn: "bnot", Args: []datalog.Term{a}}, nil
	case algebra.FMem:
		return apply2("ismem", ee.Elem, ee.Set, vars)
	default:
		panic(fmt.Sprintf("translate: unknown FExpr %T", e))
	}
}

func apply2(fn string, l, r algebra.FExpr, vars map[string]datalog.Term) (datalog.Term, error) {
	lt, err := fexprToTerm(l, vars)
	if err != nil {
		return nil, err
	}
	rt, err := fexprToTerm(r, vars)
	if err != nil {
		return nil, err
	}
	return datalog.Apply{Fn: fn, Args: []datalog.Term{lt, rt}}, nil
}
