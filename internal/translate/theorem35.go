package translate

import (
	"fmt"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/obsv"
)

// EliminateIFP realizes Theorem 3.5 (IFP-algebra ⊂ algebra=) constructively,
// by exactly the composition the paper describes: "We first translate
// IFP_exp into a deductive program (proposition 5.3). Then we translate the
// deductive program into an algebra= program (proposition 6.1)." Spelled
// out:
//
//  1. the IFP-algebra expression becomes a deductive program faithful under
//     the inflationary semantics (Proposition 5.1);
//  2. the step-index transformation makes that program faithful under the
//     valid semantics (Proposition 5.2) — together, Proposition 5.3;
//  3. the simulation-function translation turns it into an algebra= program
//     (Proposition 6.1).
//
// The result is an algebra= program with *no IFP operator anywhere*, whose
// valid evaluation has a definition named by the returned string holding the
// original expression's value — "when the ability to use recursion is added,
// a specific fixed point operator like IFP becomes redundant" (Corollary
// 3.6).
//
// One finiteness concession: Proposition 5.2's index ranges over all
// naturals; executable programs need a concrete bound, which depends on the
// database, so EliminateIFP takes the database and computes the bound by
// running the inflationary evaluation once. The paper's construction is
// database-independent because its programs may be infinite.
func EliminateIFP(e algebra.Expr, db algebra.DB) (*core.Program, algebra.DB, string, error) {
	const result = "ifpresult"
	// Bound for (2): the largest iteration count any IFP in the expression
	// reaches on this database, observed by evaluating the expression once
	// with an instrumented collector.
	bound, err := ifpIterBound(e, db)
	if err != nil {
		return nil, nil, "", fmt.Errorf("translate: bounding the step index: %w", err)
	}
	// (1)+(2) Propositions 5.1 and 5.2, with the step-index transformation
	// applied to each IFP operator individually. Indexing the flat
	// translation as a whole would replay the inflationary fixpoint of the
	// *flat* rule set, which also replays its transient subtraction
	// over-approximations — a diff whose subtrahend needs several rounds to
	// converge fires too early under flat inflationary rounds, and
	// inflationary derivation is never retracted. Per-operator indexing
	// keeps every subexpression at a frozen accumulator index, so the valid
	// model replays the hierarchical evaluation exactly.
	dlog, err := algebraToDatalogStaged(e, result, nil, bound)
	if err != nil {
		return nil, nil, "", err
	}
	dlog.AddFacts(DBFacts(db)...)
	// (3) Proposition 6.1.
	cp, cdb, err := DatalogToCore(dlog)
	if err != nil {
		return nil, nil, "", err
	}
	// The resulting program must be IFP-free: that is the theorem.
	for _, d := range cp.Defs {
		if algebra.HasIFP(d.Body) {
			return nil, nil, "", fmt.Errorf("translate: internal error: IFP survived elimination in %q", d.Name)
		}
	}
	emitTranslate("elimifp", len(dlog.Rules), len(cp.Defs), int(bound))
	return cp, cdb, result, nil
}

// maxRoundsCollector records the largest IFP round count seen during one
// instrumented evaluation.
type maxRoundsCollector struct {
	obsv.Nop
	max int
}

// IFP implements obsv.Collector.
func (m *maxRoundsCollector) IFP(s obsv.IFPStats) {
	if s.Rounds > m.max {
		m.max = s.Rounds
	}
}

// ifpIterBound evaluates the expression once, recording every IFP fixpoint's
// round count, and returns a step bound sufficient for all of them. Nested
// IFPs report once per enclosing round, so the maximum covers every
// accumulator state the staged program can reach: indices past an operator's
// convergence only carry its fixpoint forward.
func ifpIterBound(e algebra.Expr, db algebra.DB) (int64, error) {
	ev := algebra.NewEvaluator(db, algebra.Budget{})
	mr := &maxRoundsCollector{}
	ev.SetCollector(mr)
	if _, err := ev.Eval(e); err != nil {
		return 0, err
	}
	return int64(mr.max) + 1, nil
}
