package translate

import (
	"fmt"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/datalog/ground"
	"algrec/internal/semantics"
)

// EliminateIFP realizes Theorem 3.5 (IFP-algebra ⊂ algebra=) constructively,
// by exactly the composition the paper describes: "We first translate
// IFP_exp into a deductive program (proposition 5.3). Then we translate the
// deductive program into an algebra= program (proposition 6.1)." Spelled
// out:
//
//  1. the IFP-algebra expression becomes a deductive program faithful under
//     the inflationary semantics (Proposition 5.1);
//  2. the step-index transformation makes that program faithful under the
//     valid semantics (Proposition 5.2) — together, Proposition 5.3;
//  3. the simulation-function translation turns it into an algebra= program
//     (Proposition 6.1).
//
// The result is an algebra= program with *no IFP operator anywhere*, whose
// valid evaluation has a definition named by the returned string holding the
// original expression's value — "when the ability to use recursion is added,
// a specific fixed point operator like IFP becomes redundant" (Corollary
// 3.6).
//
// One finiteness concession: Proposition 5.2's index ranges over all
// naturals; executable programs need a concrete bound, which depends on the
// database, so EliminateIFP takes the database and computes the bound by
// running the inflationary evaluation once. The paper's construction is
// database-independent because its programs may be infinite.
func EliminateIFP(e algebra.Expr, db algebra.DB) (*core.Program, algebra.DB, string, error) {
	const result = "ifpresult"
	// (1) Proposition 5.1.
	dlog, err := AlgebraToDatalog(e, result, nil)
	if err != nil {
		return nil, nil, "", err
	}
	dlog.AddFacts(DBFacts(db)...)
	// Bound for (2): the inflationary step count on this database.
	g, err := ground.Ground(dlog, ground.Budget{})
	if err != nil {
		return nil, nil, "", fmt.Errorf("translate: bounding the step index: %w", err)
	}
	_, steps := semantics.NewEngine(g).Inflationary()
	// (2) Proposition 5.2.
	indexed := StepIndex(dlog, int64(steps)+1)
	// (3) Proposition 6.1.
	cp, cdb, err := DatalogToCore(indexed)
	if err != nil {
		return nil, nil, "", err
	}
	// The resulting program must be IFP-free: that is the theorem.
	for _, d := range cp.Defs {
		if algebra.HasIFP(d.Body) {
			return nil, nil, "", fmt.Errorf("translate: internal error: IFP survived elimination in %q", d.Name)
		}
	}
	emitTranslate("elimifp", len(dlog.Rules), len(cp.Defs), steps+1)
	return cp, cdb, result, nil
}
