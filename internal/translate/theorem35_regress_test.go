package translate

import (
	"testing"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/value"
)

// These cases were found by the differential fuzzer (internal/diffcheck,
// oracle expr-ifp-elim): the original EliminateIFP applied Proposition 5.2's
// step-index transformation to the whole flat translation, replaying the
// inflationary fixpoint of the flat rule set. A subtraction whose subtrahend
// needs more than one flat round to converge then fires too early, and the
// inflationary reading never retracts the spurious derivation. The staged
// per-IFP indexing evaluates every subexpression at a frozen accumulator
// index, restoring the hierarchical semantics.
func TestEliminateIFPStagedSubtraction(t *testing.T) {
	a, b, c := algebra.Rel{Name: "a"}, algebra.Rel{Name: "b"}, algebra.Rel{Name: "c"}
	db := algebra.DB{
		"a": value.NewSet(value.Int(0), value.Int(1), value.Int(2)),
		"b": value.NewSet(value.Int(0)),
		"c": value.NewSet(value.Int(2)),
	}
	cases := []struct {
		name string
		e    algebra.Expr
	}{
		// The original fuzzer witness, shrunk: the subtrahend is an IFP, so
		// it converges one flat round after the diff rule first fires.
		{"diff-over-ifp", algebra.IFP{Var: "v", Body: algebra.Diff{L: a, R: algebra.IFP{Var: "w", Body: b}}}},
		// Same failure without any nested IFP: a union chain already delays
		// the subtrahend by one round.
		{"diff-over-union", algebra.IFP{Var: "v", Body: algebra.Diff{L: a, R: algebra.Union{L: b, R: c}}}},
		// A non-monotone body: the IFP variable itself is the subtrahend.
		// Only the step-indexed form has a total valid model here.
		{"non-monotone-body", algebra.IFP{Var: "v", Body: algebra.Diff{L: a, R: algebra.Rel{Name: "v"}}}},
		// Nesting with the outer variable read inside the inner fixpoint.
		{"nested-shared-var", algebra.IFP{Var: "v", Body: algebra.Diff{
			L: algebra.IFP{Var: "w", Body: algebra.Union{L: algebra.Rel{Name: "v"}, R: b}},
			R: c,
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := algebra.NewEvaluator(db, algebra.Budget{}).Eval(tc.e)
			if err != nil {
				t.Fatalf("direct eval: %v", err)
			}
			cp, cdb, result, err := EliminateIFP(tc.e, db)
			if err != nil {
				t.Fatalf("EliminateIFP: %v", err)
			}
			res, err := core.EvalValid(cp, cdb, algebra.Budget{})
			if err != nil {
				t.Fatalf("EvalValid: %v", err)
			}
			if !res.IsTotal(result) {
				t.Fatalf("eliminated program is three-valued on %q: undef %v", result, res.UndefElems(result))
			}
			if got := res.Set(result); !value.Equal(got, want) {
				t.Fatalf("eliminated value %v, direct value %v", got, want)
			}
		})
	}
}
