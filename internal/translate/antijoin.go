package translate

import (
	"algrec/internal/algebra"
)

// antiJoinElemVar is the element-variable name used in the reconstructed row
// expression of a recognized anti-join.
const antiJoinElemVar = "__aj"

// antiJoin is the decomposition of the Flip-annotated anti-join shape
//
//	Diff(L, Map(Select(Product(Flip(L), Q), v, test), v2, v2.1))
//
// where test equates every column of Q's rows with an expression over the
// environment element. env and q are the operands; row rebuilds the Q-row
// value from the environment element (bound to antiJoinElemVar).
type antiJoin struct {
	env algebra.Expr
	q   algebra.Expr
	row algebra.FExpr
}

// antiJoinParts recognizes the anti-join shape. It is deliberately strict:
// anything that deviates falls back to the generic Diff translation, which
// is always sound.
func antiJoinParts(d algebra.Diff) (antiJoin, bool) {
	m, ok := d.R.(algebra.Map)
	if !ok {
		return antiJoin{}, false
	}
	// Out must be the first projection of the map variable.
	proj, ok := m.Out.(algebra.FField)
	if !ok || proj.Idx != 1 {
		return antiJoin{}, false
	}
	if v, ok := proj.Of.(algebra.FVar); !ok || v.Name != m.Var {
		return antiJoin{}, false
	}
	sel, ok := m.Of.(algebra.Select)
	if !ok || sel.Var != m.Var {
		return antiJoin{}, false
	}
	prod, ok := sel.Of.(algebra.Product)
	if !ok {
		return antiJoin{}, false
	}
	fl, ok := prod.L.(algebra.Flip)
	if !ok || fl.E.String() != d.L.String() {
		return antiJoin{}, false
	}
	row, ok := reconstructRow(sel.Var, sel.Test)
	if !ok {
		return antiJoin{}, false
	}
	return antiJoin{env: d.L, q: prod.R, row: row}, true
}

// reconstructRow inverts the selection test: when every conjunct equates a
// distinct row column p.2[.i] with an environment expression (over p.1), the
// full row value is expressible as a function of the environment element.
func reconstructRow(v string, test algebra.FExpr) (algebra.FExpr, bool) {
	var conds []algebra.FCmp
	var flatten func(e algebra.FExpr) bool
	flatten = func(e algebra.FExpr) bool {
		if and, isAnd := e.(algebra.FAnd); isAnd {
			return flatten(and.L) && flatten(and.R)
		}
		cmp, isCmp := e.(algebra.FCmp)
		if !isCmp || cmp.Op != algebra.OpEq {
			return false
		}
		conds = append(conds, cmp)
		return true
	}
	if !flatten(test) {
		return nil, false
	}
	byCol := map[int]algebra.FExpr{} // 0 = whole row; i>0 = column i
	for _, c := range conds {
		rowSide, envSide := c.L, c.R
		col, ok := rowColumn(rowSide, v)
		if !ok {
			rowSide, envSide = c.R, c.L
			col, ok = rowColumn(rowSide, v)
			if !ok {
				return nil, false
			}
		}
		envExpr, ok := rebaseEnvExpr(envSide, v)
		if !ok {
			return nil, false
		}
		if _, dup := byCol[col]; dup {
			return nil, false
		}
		byCol[col] = envExpr
	}
	if whole, ok := byCol[0]; ok {
		if len(byCol) != 1 {
			return nil, false
		}
		return whole, true
	}
	// Columns must be exactly 1..k.
	elems := make([]algebra.FExpr, len(byCol))
	for i := 1; i <= len(byCol); i++ {
		e, ok := byCol[i]
		if !ok {
			return nil, false
		}
		elems[i-1] = e
	}
	return algebra.FTuple{Elems: elems}, true
}

// rowColumn recognizes p.2 (the whole row, column 0) or p.2.i (column i).
func rowColumn(e algebra.FExpr, v string) (int, bool) {
	f, ok := e.(algebra.FField)
	if !ok {
		return 0, false
	}
	if inner, ok := f.Of.(algebra.FVar); ok {
		if inner.Name == v && f.Idx == 2 {
			return 0, true
		}
		return 0, false
	}
	if inner, ok := f.Of.(algebra.FField); ok {
		if base, ok := inner.Of.(algebra.FVar); ok && base.Name == v && inner.Idx == 2 {
			return f.Idx, true
		}
	}
	return 0, false
}

// rebaseEnvExpr rewrites an expression over the product element's first
// component (p.1...) into an expression over the bare environment element
// (antiJoinElemVar); it fails if the expression touches the row side or the
// raw product variable.
func rebaseEnvExpr(e algebra.FExpr, v string) (algebra.FExpr, bool) {
	switch ee := e.(type) {
	case algebra.FVar:
		// a bare reference to the product element cannot be rebased
		return nil, ee.Name != v
	case algebra.FConst:
		return ee, true
	case algebra.FField:
		if base, ok := ee.Of.(algebra.FVar); ok && base.Name == v {
			if ee.Idx == 1 {
				return algebra.FVar{Name: antiJoinElemVar}, true
			}
			return nil, false // row side
		}
		of, ok := rebaseEnvExpr(ee.Of, v)
		if !ok {
			return nil, false
		}
		return algebra.FField{Of: of, Idx: ee.Idx}, true
	case algebra.FTuple:
		elems := make([]algebra.FExpr, len(ee.Elems))
		for i, el := range ee.Elems {
			re, ok := rebaseEnvExpr(el, v)
			if !ok {
				return nil, false
			}
			elems[i] = re
		}
		return algebra.FTuple{Elems: elems}, true
	case algebra.FCmp:
		l, ok := rebaseEnvExpr(ee.L, v)
		if !ok {
			return nil, false
		}
		r, ok := rebaseEnvExpr(ee.R, v)
		if !ok {
			return nil, false
		}
		return algebra.FCmp{Op: ee.Op, L: l, R: r}, true
	case algebra.FArith:
		l, ok := rebaseEnvExpr(ee.L, v)
		if !ok {
			return nil, false
		}
		r, ok := rebaseEnvExpr(ee.R, v)
		if !ok {
			return nil, false
		}
		return algebra.FArith{Op: ee.Op, L: l, R: r}, true
	case algebra.FAnd:
		l, ok := rebaseEnvExpr(ee.L, v)
		if !ok {
			return nil, false
		}
		r, ok := rebaseEnvExpr(ee.R, v)
		if !ok {
			return nil, false
		}
		return algebra.FAnd{L: l, R: r}, true
	case algebra.FOr:
		l, ok := rebaseEnvExpr(ee.L, v)
		if !ok {
			return nil, false
		}
		r, ok := rebaseEnvExpr(ee.R, v)
		if !ok {
			return nil, false
		}
		return algebra.FOr{L: l, R: r}, true
	case algebra.FNot:
		inner, ok := rebaseEnvExpr(ee.E, v)
		if !ok {
			return nil, false
		}
		return algebra.FNot{E: inner}, true
	case algebra.FMem:
		el, ok := rebaseEnvExpr(ee.Elem, v)
		if !ok {
			return nil, false
		}
		s, ok := rebaseEnvExpr(ee.Set, v)
		if !ok {
			return nil, false
		}
		return algebra.FMem{Elem: el, Set: s}, true
	default:
		return nil, false
	}
}
