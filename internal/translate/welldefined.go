package translate

import (
	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/datalog/ground"
)

// CertainlyWellDefined is a sufficient (not necessary) check that an
// algebra= program has an initial valid model on the given database, without
// running the full valid-model alternation: it grounds the Proposition 5.4
// translation and tests local stratification — the argument by which the
// paper proves Theorem 3.1 ("based on a 'local stratification' argument").
// A locally stratified ground program has a two-valued well-founded/valid
// model, so a true result guarantees core.EvalValid will report WellDefined.
//
// A false result is inconclusive: programs can be well defined on a database
// without being locally stratified (the ill-definedness may be confined to
// atoms whose undefinedness cancels out), and by Proposition 3.2 no complete
// syntactic check exists. Errors come from translation or from the grounding
// budget.
func CertainlyWellDefined(p *core.Program, db algebra.DB) (bool, error) {
	_, g, err := programToGround(p, db, ground.Budget{})
	if err != nil {
		return false, err
	}
	return ground.LocallyStratified(g), nil
}
