package translate

import (
	"testing"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/value"
)

// TestStableSetsWinBranching: the paper's conclusion promises the results
// adjust to the stable-model semantics; on the pure 2-cycle game the stable
// reading branches into two models, one per winner.
func TestStableSetsWinBranching(t *testing.T) {
	db := algebra.DB{"move": pairsOf([2]string{"a", "b"}, [2]string{"b", "a"})}
	models, err := StableSets(winCore(), db, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Fatalf("got %d stable readings, want 2", len(models))
	}
	a := value.NewSet(value.String("a"))
	b := value.NewSet(value.String("b"))
	if !value.Equal(models[0]["win"], a) || !value.Equal(models[1]["win"], b) {
		t.Errorf("stable WIN sets = %v, %v; want {a}, {b}", models[0]["win"], models[1]["win"])
	}
	// The odd loop S = {a} − S has no stable reading at all.
	p := &core.Program{Defs: []core.Def{{Name: "s",
		Body: algebra.Diff{L: algebra.Singleton(value.String("a")), R: algebra.Rel{Name: "s"}}}}}
	none, err := StableSets(p, algebra.DB{}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("S = {a} − S should have no stable reading, got %v", none)
	}
}

// TestStableSetsTotalValid: when the valid interpretation is two-valued, the
// stable reading is unique and coincides with it.
func TestStableSetsTotalValid(t *testing.T) {
	db := algebra.DB{"move": pairsOf([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"b", "d"})}
	res, err := core.EvalValid(winCore(), db, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.WellDefined() {
		t.Fatal("precondition: acyclic game is well defined")
	}
	models, err := StableSets(winCore(), db, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 {
		t.Fatalf("got %d stable readings, want 1", len(models))
	}
	if !value.Equal(models[0]["win"], res.Set("win")) {
		t.Errorf("stable = %v, valid = %v", models[0]["win"], res.Set("win"))
	}
}

// TestWellFoundedSetsMatchValid: the well-founded reading of an algebra=
// program coincides with core.EvalValid on the corpus (the paper's remark
// that its results transfer between the two semantics).
func TestWellFoundedSetsMatchValid(t *testing.T) {
	dbs := []algebra.DB{
		{"move": pairsOf([2]string{"a", "b"}, [2]string{"b", "c"})},
		{"move": pairsOf([2]string{"a", "a"})},
		{"move": pairsOf([2]string{"a", "a"}, [2]string{"a", "b"}, [2]string{"b", "a"})},
	}
	for _, db := range dbs {
		res, err := core.EvalValid(winCore(), db, algebra.Budget{})
		if err != nil {
			t.Fatal(err)
		}
		lo, up, err := WellFoundedSets(winCore(), db)
		if err != nil {
			t.Fatal(err)
		}
		if !value.Equal(lo["win"], res.Set("win")) {
			t.Errorf("db %v: WFS lower %v vs valid %v", db, lo["win"], res.Set("win"))
		}
		if !value.Equal(up["win"], res.Upper["win"]) {
			t.Errorf("db %v: WFS upper %v vs valid %v", db, up["win"], res.Upper["win"])
		}
	}
}

// TestStableSetsEveryModelExtendsValid: every stable reading contains the
// valid lower bound and stays within the upper bound.
func TestStableSetsEveryModelExtendsValid(t *testing.T) {
	db := algebra.DB{"move": pairsOf(
		[2]string{"a", "b"}, [2]string{"b", "a"}, [2]string{"b", "c"}, [2]string{"c", "d"})}
	res, err := core.EvalValid(winCore(), db, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	models, err := StableSets(winCore(), db, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) == 0 {
		t.Fatal("expected at least one stable reading")
	}
	for _, m := range models {
		if !res.Set("win").Subset(m["win"]) {
			t.Errorf("stable model %v misses valid-certain %v", m["win"], res.Set("win"))
		}
		if !m["win"].Subset(res.Upper["win"]) {
			t.Errorf("stable model %v exceeds valid-possible %v", m["win"], res.Upper["win"])
		}
	}
}
