package translate

import (
	"strings"
	"testing"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/datalog"
	"algrec/internal/datalog/ground"
	"algrec/internal/semantics"
	"algrec/internal/value"
)

func pairsOf(ps ...[2]string) value.Set {
	elems := make([]value.Value, len(ps))
	for i, p := range ps {
		elems[i] = value.Pair(value.String(p[0]), value.String(p[1]))
	}
	return value.NewSet(elems...)
}

func evalValidDatalog(t *testing.T, p *datalog.Program) *semantics.Interp {
	t.Helper()
	in, err := semantics.Eval(p, semantics.SemValid, ground.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// tcIFP is the transitive-closure IFP expression over relation "move".
func tcIFP() algebra.Expr {
	p := algebra.FVar{Name: "p"}
	join := algebra.Select{
		Of:  algebra.Product{L: algebra.Rel{Name: "x"}, R: algebra.Rel{Name: "move"}},
		Var: "p",
		Test: algebra.FCmp{Op: algebra.OpEq,
			L: algebra.FField{Of: algebra.FField{Of: p, Idx: 1}, Idx: 2},
			R: algebra.FField{Of: algebra.FField{Of: p, Idx: 2}, Idx: 1}},
	}
	compose := algebra.Map{Of: join, Var: "p", Out: algebra.FTuple{Elems: []algebra.FExpr{
		algebra.FField{Of: algebra.FField{Of: p, Idx: 1}, Idx: 1},
		algebra.FField{Of: algebra.FField{Of: p, Idx: 2}, Idx: 2},
	}}}
	return algebra.IFP{Var: "x", Body: algebra.Union{L: algebra.Rel{Name: "move"}, R: compose}}
}

// TestProp51PositiveIFP: a positive IFP-algebra query and its deductive
// translation agree; for positive queries every semantics gives the same
// answer, so we check both inflationary (Proposition 5.1) and valid.
func TestProp51PositiveIFP(t *testing.T) {
	db := algebra.DB{"move": pairsOf([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "d"})}
	want, err := algebra.Eval(tcIFP(), db)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := AlgebraToDatalog(tcIFP(), "result", nil)
	if err != nil {
		t.Fatal(err)
	}
	prog.AddFacts(DBFacts(db)...)
	for _, sem := range []semantics.Semantics{semantics.SemInflationary, semantics.SemValid, semantics.SemWellFounded} {
		in, err := semantics.Eval(prog, sem, ground.Budget{})
		if err != nil {
			t.Fatalf("%v: %v", sem, err)
		}
		got := TrueSet(in, "result")
		if !value.Equal(got, want) {
			t.Errorf("%v: translated TC = %v, want %v", sem, got, want)
		}
	}
}

// TestProp51Example4 is the paper's Example 4 end to end: Q = IFP_{{a}−x}
// evaluates to {a}; its translation derives result(a) under the inflationary
// semantics but leaves it undefined under the valid semantics.
func TestProp51Example4(t *testing.T) {
	a := value.String("a")
	q := algebra.IFP{Var: "x", Body: algebra.Diff{L: algebra.Singleton(a), R: algebra.Rel{Name: "x"}}}
	want, err := algebra.Eval(q, algebra.DB{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := AlgebraToDatalog(q, "result", nil)
	if err != nil {
		t.Fatal(err)
	}
	infl, err := semantics.Eval(prog, semantics.SemInflationary, ground.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got := TrueSet(infl, "result"); !value.Equal(got, want) {
		t.Errorf("inflationary result = %v, want %v", got, want)
	}
	valid := evalValidDatalog(t, prog)
	if got := valid.TruthOf(datalog.Fact{Pred: "result", Args: []value.Value{a}}); got != semantics.Undef {
		t.Errorf("valid result(a) = %v, want undef (the paper's Example 4)", got)
	}
}

// TestProp52StepIndex: valid evaluation of the step-indexed transform equals
// inflationary evaluation of the original, on stratified and non-stratified
// programs alike.
func TestProp52StepIndex(t *testing.T) {
	srcs := []string{
		// Example 4's program: inflationary derives q(a).
		"r(a).\nq(X) :- r(X), not q(X).",
		// The win game on a cycle.
		"move(a, b). move(b, a). move(b, c).\nwin(X) :- move(X, Y), not win(Y).",
		// Transitive closure (positive).
		"e(1, 2). e(2, 3).\ntc(X, Y) :- e(X, Y).\ntc(X, Z) :- tc(X, Y), e(Y, Z).",
		// Mutual negation.
		"d(1). d(2).\np(X) :- d(X), not q(X).\nq(X) :- d(X), not p(X).",
		// Rule with no positive atom.
		"p :- not q.\nr :- p.",
	}
	for _, src := range srcs {
		p := datalog.MustParse(src)
		g, err := ground.Ground(p, ground.Budget{})
		if err != nil {
			t.Fatal(err)
		}
		infl, steps := semantics.NewEngine(g).Inflationary()
		transformed := StepIndex(p, int64(steps)+1)
		valid := evalValidDatalog(t, transformed)
		if cu := valid.CountUndef(); cu != 0 {
			t.Errorf("%s:\nstep-indexed program should be two-valued, %d undefined", src, cu)
		}
		for _, pred := range p.Preds() {
			wantSet := TrueSet(infl, pred)
			gotSet := TrueSet(valid, pred)
			if !value.Equal(wantSet, gotSet) {
				t.Errorf("%s:\npred %s: inflationary %v vs step-indexed valid %v", src, pred, wantSet, gotSet)
			}
		}
	}
}

// winCore is Example 3's WIN program as algebra=.
func winCore() *core.Program {
	body := algebra.Proj(
		algebra.Diff{
			L: algebra.Rel{Name: "move"},
			R: algebra.Product{L: algebra.Proj(algebra.Rel{Name: "move"}, 1), R: algebra.Rel{Name: "win"}},
		}, 1)
	return &core.Program{Defs: []core.Def{{Name: "win", Body: body}}}
}

// TestProp54CoreToDatalog: an algebra= program and its deductive translation
// agree under the valid semantics on both certain and undefined facts.
func TestProp54CoreToDatalog(t *testing.T) {
	dbs := []algebra.DB{
		{"move": pairsOf([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"b", "d"})},
		{"move": pairsOf([2]string{"a", "a"})},
		{"move": pairsOf([2]string{"a", "a"}, [2]string{"a", "b"})},
		{"move": pairsOf([2]string{"a", "b"}, [2]string{"b", "a"}, [2]string{"b", "c"})},
	}
	for _, db := range dbs {
		res, err := core.EvalValid(winCore(), db, algebra.Budget{})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := CoreToDatalog(winCore())
		if err != nil {
			t.Fatal(err)
		}
		prog.AddFacts(DBFacts(db)...)
		in := evalValidDatalog(t, prog)
		if got, want := TrueSet(in, "win"), res.Set("win"); !value.Equal(got, want) {
			t.Errorf("db %v: certain win: datalog %v vs core %v", db, got, want)
		}
		if got, want := UndefSet(in, "win"), res.UndefElems("win"); !value.Equal(got, want) {
			t.Errorf("db %v: undefined win: datalog %v vs core %v", db, got, want)
		}
	}
}

// TestProp61WinGame: the deduction-to-algebra direction on the win game:
// the algebra= translation evaluated with core.EvalValid matches the valid
// semantics of the original program, including undefined atoms.
func TestProp61WinGame(t *testing.T) {
	srcs := []string{
		"move(a, b). move(b, c). move(b, d).\nwin(X) :- move(X, Y), not win(Y).",
		"move(a, a).\nwin(X) :- move(X, Y), not win(Y).",
		"move(a, a). move(a, b).\nwin(X) :- move(X, Y), not win(Y).",
		"move(a, b). move(b, a).\nwin(X) :- move(X, Y), not win(Y).",
	}
	for _, src := range srcs {
		p := datalog.MustParse(src)
		in := evalValidDatalog(t, p)
		cp, db, err := DatalogToCore(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.EvalValid(cp, db, algebra.Budget{})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := res.Set("win"), TrueSet(in, "win"); !value.Equal(got, want) {
			t.Errorf("%s:\ncertain win: core %v vs datalog %v", src, got, want)
		}
		if got, want := res.UndefElems("win"), UndefSet(in, "win"); !value.Equal(got, want) {
			t.Errorf("%s:\nundefined win: core %v vs datalog %v", src, got, want)
		}
	}
}

// TestProp61General exercises the simulation-function compilation on joins,
// assignments, comparisons, multiple rules and multiple predicates.
func TestProp61General(t *testing.T) {
	srcs := []string{
		// transitive closure
		"e(1, 2). e(2, 3). e(3, 4).\ntc(X, Y) :- e(X, Y).\ntc(X, Z) :- tc(X, Y), e(Y, Z).",
		// same generation
		`par(a, c). par(b, c). par(c, e). par(d, e).
sg(X, Y) :- par(X, Z), par(Y, Z).
sg(X, Y) :- par(X, W), sg(W, V), par(Y, V).`,
		// arithmetic assignment and comparison
		"n(1). n(2). n(3).\nbig(Y) :- n(X), Y = plus(X, 10), Y >= 12.",
		// constants in atom arguments and repeated variables
		"e(1, 1). e(1, 2). e(2, 2).\nloop(X) :- e(X, X).\nfromone(Y) :- e(1, Y).",
		// negation against an EDB relation
		"d(1). d(2). d(3). q(2).\np(X) :- d(X), not q(X).",
		// multiple IDB predicates with interdependencies
		`d(1). d(2).
a(X) :- d(X), not b(X).
b(X) :- d(X), not a(X).
both(X) :- a(X). both(X) :- b(X).`,
		// 0-ary predicates
		"one.\ntwo :- one.\nthree :- two, not four.",
		// IDB facts mixed with rules
		"win(z).\nmove(a, b).\nwin(X) :- move(X, Y), not win(Y).",
	}
	for _, src := range srcs {
		p := datalog.MustParse(src)
		in := evalValidDatalog(t, p)
		cp, db, err := DatalogToCore(p)
		if err != nil {
			t.Fatalf("%s:\n%v", src, err)
		}
		res, err := core.EvalValid(cp, db, algebra.Budget{})
		if err != nil {
			t.Fatalf("%s:\n%v", src, err)
		}
		for _, pred := range p.IDB() {
			if got, want := res.Set(pred), TrueSet(in, pred); !value.Equal(got, want) {
				t.Errorf("%s:\npred %s certain: core %v vs datalog %v", src, pred, got, want)
			}
			if got, want := res.UndefElems(pred), UndefSet(in, pred); !value.Equal(got, want) {
				t.Errorf("%s:\npred %s undefined: core %v vs datalog %v", src, pred, got, want)
			}
		}
	}
}

// TestTheorem62RoundTrip: datalog → algebra= → datalog preserves the valid
// model of every IDB predicate.
func TestTheorem62RoundTrip(t *testing.T) {
	src := "move(a, a). move(a, b). move(b, c).\nwin(X) :- move(X, Y), not win(Y)."
	p := datalog.MustParse(src)
	orig := evalValidDatalog(t, p)
	cp, db, err := DatalogToCore(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := CoreToDatalog(cp)
	if err != nil {
		t.Fatal(err)
	}
	back.AddFacts(DBFacts(db)...)
	in2 := evalValidDatalog(t, back)
	if got, want := TrueSet(in2, "win"), TrueSet(orig, "win"); !value.Equal(got, want) {
		t.Errorf("round trip certain win: %v vs %v", got, want)
	}
	if got, want := UndefSet(in2, "win"), UndefSet(orig, "win"); !value.Equal(got, want) {
		t.Errorf("round trip undefined win: %v vs %v", got, want)
	}
}

// TestTheorem43Stratified: a stratified program, its positive IFP-algebra
// translation, and the stratified evaluation all agree; the translation is
// genuinely positive IFP (no recursive definitions, positive IFP bodies).
func TestTheorem43Stratified(t *testing.T) {
	srcs := []string{
		`e(1, 2). e(2, 3). n(1). n(2). n(3).
tc(X, Y) :- e(X, Y).
tc(X, Z) :- tc(X, Y), e(Y, Z).
un(X, Y) :- n(X), n(Y), not tc(X, Y).`,
		`e(1, 2). e(2, 1). e(3, 3). n(1). n(2). n(3).
r(X) :- e(1, X).
r(Y) :- r(X), e(X, Y).
iso(X) :- n(X), not r(X).
pairup(X, Y) :- iso(X), r(Y).`,
		// three strata
		`d(1). d(2). d(3).
a(X) :- d(X), X < 3.
b(X) :- d(X), not a(X).
c(X) :- d(X), not b(X).`,
	}
	for _, src := range srcs {
		p := datalog.MustParse(src)
		strat, err := datalog.Stratify(p)
		if err != nil {
			t.Fatal(err)
		}
		g, err := ground.Ground(p, ground.Budget{})
		if err != nil {
			t.Fatal(err)
		}
		in, err := semantics.NewEngine(g).Stratified(strat)
		if err != nil {
			t.Fatal(err)
		}
		cp, db, err := StratifiedToPositiveIFP(p)
		if err != nil {
			t.Fatalf("%s:\n%v", src, err)
		}
		// The output is a positive IFP-algebra program: no recursive
		// definitions (all recursion lives inside IFP operators) and every
		// IFP variable occurs only positively in its body. Subtraction of
		// *closed* lower-stratum expressions is permitted — that is exactly
		// how stratified negation is compiled.
		if cp.HasRecursion() {
			t.Errorf("%s:\ntranslation has recursive definitions", src)
		}
		for _, d := range cp.Defs {
			if !algebra.IsPositiveIFP(d.Body) {
				t.Errorf("%s:\ndefinition %s has a non-positive IFP", src, d.Name)
			}
		}
		res, err := core.EvalValid(cp, db, algebra.Budget{})
		if err != nil {
			t.Fatalf("%s:\n%v", src, err)
		}
		if !res.WellDefined() {
			t.Errorf("%s:\npositive IFP translation should be well defined", src)
		}
		for _, pred := range p.IDB() {
			if got, want := res.Set(pred), TrueSet(in, pred); !value.Equal(got, want) {
				t.Errorf("%s:\npred %s: core %v vs stratified %v", src, pred, got, want)
			}
		}
	}
}

// TestStratifiedRejectsWinGame: the Theorem 4.3 translation requires a
// stratified input.
func TestStratifiedRejectsWinGame(t *testing.T) {
	p := datalog.MustParse("move(a, a).\nwin(X) :- move(X, Y), not win(Y).")
	if _, _, err := StratifiedToPositiveIFP(p); err == nil {
		t.Fatal("expected stratification error")
	}
}

func TestDatalogToCoreRejectsUnsafe(t *testing.T) {
	p := datalog.MustParse("q(1).\np(X) :- not q(X).")
	if _, _, err := DatalogToCore(p); err == nil || !strings.Contains(err.Error(), "unsafe") {
		t.Fatalf("expected unsafe-rule error, got %v", err)
	}
}

func TestConvertHelpers(t *testing.T) {
	fs := []datalog.Fact{
		{Pred: "e", Args: []value.Value{value.Int(1), value.Int(2)}},
		{Pred: "e", Args: []value.Value{value.Int(2), value.Int(3)}},
	}
	s := FactsToSet(fs)
	if s.Len() != 2 || !s.Has(value.Pair(value.Int(1), value.Int(2))) {
		t.Errorf("FactsToSet = %v", s)
	}
	back, err := SetToFacts("e", s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Key() != "e(1, 2)" {
		t.Errorf("SetToFacts = %v", back)
	}
	if _, err := SetToFacts("e", value.NewSet(value.Int(1)), 2); err == nil {
		t.Error("expected arity mismatch error")
	}
	// unary convention
	u := FactsToSet([]datalog.Fact{{Pred: "p", Args: []value.Value{value.Int(7)}}})
	if !value.Equal(u, value.NewSet(value.Int(7))) {
		t.Errorf("unary FactsToSet = %v", u)
	}
	// arity inconsistency detection
	bad := datalog.MustParse("p(1). p(1, 2).")
	if _, err := Arities(bad); err == nil {
		t.Error("expected arity inconsistency error")
	}
}

func TestDBFactsRoundTrip(t *testing.T) {
	db := algebra.DB{
		"r": value.NewSet(value.Int(1), value.Int(2)),
		"s": value.NewSet(value.Pair(value.Int(1), value.String("a"))),
	}
	fs := DBFacts(db)
	if len(fs) != 3 {
		t.Fatalf("DBFacts produced %d facts, want 3", len(fs))
	}
	// Every relation element round-trips through the unary predicate.
	byPred := map[string][]datalog.Fact{}
	for _, f := range fs {
		byPred[f.Pred] = append(byPred[f.Pred], f)
	}
	for name, want := range db {
		if got := FactsToSet(byPred[name]); !value.Equal(got, want) {
			t.Errorf("relation %s: %v vs %v", name, got, want)
		}
	}
}
