// Package translate implements the paper's constructive translations between
// the algebraic and deductive paradigms — the computational content of its
// equivalence results:
//
//   - AlgebraToDatalog: algebra / IFP-algebra expressions to deductive
//     programs (the "naive and quite well-known algorithm" of Section 5;
//     Proposition 5.1 pairs it with the inflationary semantics).
//   - CoreToDatalog: algebra= programs to deductive programs evaluated under
//     the valid semantics (Proposition 5.4).
//   - StepIndex: the index transformation of Proposition 5.2, embedding
//     inflationary evaluation into the valid semantics.
//   - DatalogToCore: safe deductive programs to algebra= programs via
//     simulation functions (Proposition 6.1).
//   - StratifiedToPositiveIFP: stratified programs to positive IFP-algebra
//     programs (the constructive direction of Theorem 4.3).
//
// Relations cross the paradigm boundary under a fixed convention: a
// predicate of arity 1 is the set of its argument values, a predicate of
// arity n ≥ 2 is a set of n-tuples, and a 0-ary predicate is either the
// empty set or the singleton {()}.
package translate

import (
	"fmt"

	"algrec/internal/algebra"
	"algrec/internal/datalog"
	"algrec/internal/semantics"
	"algrec/internal/value"
)

// FactsToSet converts ground facts of one predicate to a set under the
// arity convention.
func FactsToSet(facts []datalog.Fact) value.Set {
	elems := make([]value.Value, 0, len(facts))
	for _, f := range facts {
		elems = append(elems, factElem(f))
	}
	return value.NewSet(elems...)
}

func factElem(f datalog.Fact) value.Value {
	switch len(f.Args) {
	case 1:
		return f.Args[0]
	default:
		return value.NewTuple(f.Args...)
	}
}

// SetToFacts converts a set back to ground facts of the given predicate and
// arity. It fails if an element does not fit the arity (e.g. a non-tuple
// element for arity 2).
func SetToFacts(pred string, s value.Set, arity int) ([]datalog.Fact, error) {
	var out []datalog.Fact
	for _, e := range s.Elems() {
		switch arity {
		case 1:
			out = append(out, datalog.Fact{Pred: pred, Args: []value.Value{e}})
		default:
			t, ok := e.(value.Tuple)
			if !ok || t.Len() != arity {
				return nil, fmt.Errorf("translate: element %v of %s does not match arity %d", e, pred, arity)
			}
			out = append(out, datalog.Fact{Pred: pred, Args: t.Elems()})
		}
	}
	return out, nil
}

// TrueSet extracts the certainly-true relation of a predicate from a
// three-valued interpretation as a set under the arity convention.
func TrueSet(in *semantics.Interp, pred string) value.Set {
	return FactsToSet(in.TrueFacts(pred))
}

// UndefSet extracts the undefined part of a predicate from a three-valued
// interpretation as a set under the arity convention.
func UndefSet(in *semantics.Interp, pred string) value.Set {
	return FactsToSet(in.UndefFacts(pred))
}

// Arities returns the arity of every predicate in the program, and an error
// if a predicate is used at two different arities.
func Arities(p *datalog.Program) (map[string]int, error) {
	out := map[string]int{}
	note := func(a datalog.Atom) error {
		if prev, ok := out[a.Pred]; ok && prev != len(a.Args) {
			return fmt.Errorf("translate: predicate %s used at arities %d and %d", a.Pred, prev, len(a.Args))
		}
		out[a.Pred] = len(a.Args)
		return nil
	}
	for _, r := range p.Rules {
		if err := note(r.Head); err != nil {
			return nil, err
		}
		for _, l := range r.Body {
			if la, ok := l.(datalog.LitAtom); ok {
				if err := note(la.Atom); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// SplitProgram separates the program into EDB relations (predicates defined
// by ground facts only) converted to an algebra database, and the remaining
// rules plus any facts for IDB predicates.
func SplitProgram(p *datalog.Program) (db algebra.DB, idbFacts map[string][]datalog.Fact, rules []datalog.Rule, err error) {
	isIDB := map[string]bool{}
	for _, r := range p.Rules {
		if !r.IsFact() {
			isIDB[r.Head.Pred] = true
		}
	}
	edbFacts := map[string][]datalog.Fact{}
	idbFacts = map[string][]datalog.Fact{}
	for _, r := range p.Rules {
		if !r.IsFact() {
			rules = append(rules, r)
			continue
		}
		f, ferr := datalog.EvalGroundAtom(r.Head, nil)
		if ferr != nil {
			return nil, nil, nil, fmt.Errorf("translate: fact %s is not ground: %w", r.Head, ferr)
		}
		if isIDB[f.Pred] {
			idbFacts[f.Pred] = append(idbFacts[f.Pred], f)
		} else {
			edbFacts[f.Pred] = append(edbFacts[f.Pred], f)
		}
	}
	db = algebra.DB{}
	for pred, fs := range edbFacts {
		db[pred] = FactsToSet(fs)
	}
	// EDB predicates that occur only in rule bodies have no facts at all;
	// they denote the empty relation.
	for _, r := range p.Rules {
		for _, l := range r.Body {
			la, ok := l.(datalog.LitAtom)
			if !ok {
				continue
			}
			if isIDB[la.Atom.Pred] {
				continue
			}
			if _, ok := db[la.Atom.Pred]; !ok {
				db[la.Atom.Pred] = value.EmptySet
			}
		}
	}
	return db, idbFacts, rules, nil
}

// DBFacts converts an algebra database to ground facts: each relation
// becomes a unary predicate holding its elements. It is the inverse
// direction used when shipping a database to the deductive side
// (Propositions 5.1/5.4, where every subexpression denotes a set of
// elements and all predicates are unary).
func DBFacts(db algebra.DB) []datalog.Fact {
	var out []datalog.Fact
	for name, s := range db {
		for _, e := range s.Elems() {
			out = append(out, datalog.Fact{Pred: name, Args: []value.Value{e}})
		}
	}
	datalog.SortFacts(out)
	return out
}
