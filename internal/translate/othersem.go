package translate

import (
	"sort"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/datalog/ground"
	"algrec/internal/semantics"
	"algrec/internal/value"
)

// This file makes the paper's concluding remark executable: "The results of
// this work can be easily adjusted to capture other semantics for negation,
// e.g. the well-founded or the stable-model semantics, by modifying the
// definition of the initial valid model accordingly." An algebra= program is
// given a stable-model (or well-founded) reading by translating it to
// deduction (Proposition 5.4) and evaluating there, then converting each
// model back to sets.

// StableSets evaluates an algebra= program under the stable-model reading:
// each returned map is one stable model, giving the content of every defined
// set. maxUndef bounds the residual search as in Engine.StableModels. The
// models are returned in a deterministic order.
//
// On the paper's cyclic WIN game this branches: move(a,b), move(b,a) yields
// two stable models, {win = {a}} and {win = {b}}, while the valid semantics
// leaves both memberships undefined.
func StableSets(p *core.Program, db algebra.DB, maxUndef int) ([]map[string]value.Set, error) {
	return StableSetsBudget(p, db, maxUndef, ground.Budget{})
}

// StableSetsBudget is StableSets with an explicit grounding budget; the
// budget's Interrupt channel, when set, also cancels the residual search
// between candidate windows (Engine.SetInterrupt), so a server can abandon
// the whole pipeline on a deadline.
func StableSetsBudget(p *core.Program, db algebra.DB, maxUndef int, gb ground.Budget) ([]map[string]value.Set, error) {
	q, g, err := programToGround(p, db, gb)
	if err != nil {
		return nil, err
	}
	e := semantics.NewEngine(g)
	e.SetInterrupt(gb.Interrupt)
	models, err := e.StableModels(maxUndef)
	if err != nil {
		return nil, err
	}
	out := make([]map[string]value.Set, 0, len(models))
	for _, m := range models {
		sets := map[string]value.Set{}
		for _, d := range q.Defs {
			sets[d.Name] = TrueSet(m, d.Name)
		}
		out = append(out, sets)
	}
	sort.Slice(out, func(i, j int) bool { return lessSetMap(out[i], out[j]) })
	return out, nil
}

// WellFoundedSets evaluates an algebra= program under the well-founded
// reading via the deductive translation, returning certain and possible
// bounds per defined set. On programs with positive IFP bodies and no
// recursive name under a double subtrahend, it coincides with
// core.EvalValid — that agreement is differentially fuzzed
// (internal/diffcheck, core-wellfounded oracle), mirroring the paper's
// remark. Two fuzzer-found boundaries limit the equivalence: a non-monotone
// IFP translates to flat recursion p ← E[v:=p], which matches the
// inflationary operator only for positive bodies (counterexample:
// ifp(v, diff(a, v))); and a recursive name under two subtrahends, e.g.
// def s = diff(m, diff(a, s)), is positive for the exact-set algebra but
// stays doubly negated through the translation's auxiliary predicate, whose
// three-valued well-founded evaluation leaves m∖a-elements undefined where
// the native alternation makes them certain. Unknown relation names are
// read as empty relations rather than rejected.
func WellFoundedSets(p *core.Program, db algebra.DB) (lower, upper map[string]value.Set, err error) {
	return WellFoundedSetsBudget(p, db, ground.Budget{})
}

// WellFoundedSetsBudget is WellFoundedSets with an explicit grounding
// budget (including its Interrupt cancellation channel).
func WellFoundedSetsBudget(p *core.Program, db algebra.DB, gb ground.Budget) (lower, upper map[string]value.Set, err error) {
	q, g, err := programToGround(p, db, gb)
	if err != nil {
		return nil, nil, err
	}
	wf := semantics.NewEngine(g).WellFounded()
	lower = map[string]value.Set{}
	upper = map[string]value.Set{}
	for _, d := range q.Defs {
		lower[d.Name] = TrueSet(wf, d.Name)
		upper[d.Name] = TrueSet(wf, d.Name).Union(UndefSet(wf, d.Name))
	}
	return lower, upper, nil
}

// programToGround translates an algebra= program plus database to a ground
// deductive program, also returning the inlined program (for the definition
// list).
func programToGround(p *core.Program, db algebra.DB, gb ground.Budget) (*core.Program, *ground.Program, error) {
	q, err := p.Inline()
	if err != nil {
		return nil, nil, err
	}
	prog, err := CoreToDatalog(p)
	if err != nil {
		return nil, nil, err
	}
	prog.AddFacts(DBFacts(db)...)
	g, err := ground.Ground(prog, gb)
	if err != nil {
		return nil, nil, err
	}
	return q, g, nil
}

func lessSetMap(a, b map[string]value.Set) bool {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if c := a[k].Compare(b[k]); c != 0 {
			return c < 0
		}
	}
	return false
}
