package translate

import (
	"testing"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/value"
)

// TestTheorem35TC: eliminating the IFP from the transitive-closure query
// yields an IFP-free algebra= program with the same (two-valued) answer.
func TestTheorem35TC(t *testing.T) {
	db := algebra.DB{"move": pairsOf([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "d"})}
	want, err := algebra.Eval(tcIFP(), db)
	if err != nil {
		t.Fatal(err)
	}
	cp, cdb, result, err := EliminateIFP(tcIFP(), db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.EvalValid(cp, cdb, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsTotal(result) {
		t.Fatalf("eliminated program not well defined: undef %v", res.UndefElems(result))
	}
	if !value.Equal(res.Set(result), want) {
		t.Errorf("eliminated TC = %v, want %v", res.Set(result), want)
	}
}

// TestTheorem35NonMonotone is the crux: IFP_{{a}−x} = {a} is a
// *non-monotone* fixed point, the expression whose naive recursive equation
// S = {a} − S is undefined. Theorem 3.5's pipeline still expresses it in
// algebra= — with a two-valued valid model — because the step index replays
// the inflationary computation.
func TestTheorem35NonMonotone(t *testing.T) {
	a := value.String("a")
	q := algebra.IFP{Var: "x", Body: algebra.Diff{L: algebra.Singleton(a), R: algebra.Rel{Name: "x"}}}
	cp, cdb, result, err := EliminateIFP(q, algebra.DB{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.EvalValid(cp, cdb, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsTotal(result) {
		t.Fatalf("eliminated {a}−x not well defined: undef %v", res.UndefElems(result))
	}
	if !value.Equal(res.Set(result), value.NewSet(a)) {
		t.Errorf("eliminated IFP_{{a}-x} = %v, want {a}", res.Set(result))
	}
	// Contrast: the naive recursive equation is undefined (Section 3.2).
	naive := &core.Program{Defs: []core.Def{{Name: "s",
		Body: algebra.Diff{L: algebra.Singleton(a), R: algebra.Rel{Name: "s"}}}}}
	nres, err := core.EvalValid(naive, algebra.DB{}, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if nres.IsTotal("s") {
		t.Error("naive equation S = {a} − S should be undefined; the theorem needs the full pipeline")
	}
}

// TestTheorem35Nested: nested IFPs also eliminate.
func TestTheorem35Nested(t *testing.T) {
	// inner: powers of two up to 4; outer: accumulate +10 images, bounded.
	inner := algebra.IFP{Var: "x", Body: algebra.Select{
		Of:   algebra.Union{L: algebra.Singleton(value.Int(1)), R: algebra.Map{Of: algebra.Rel{Name: "x"}, Var: "y", Out: algebra.FArith{Op: algebra.OpTimes, L: algebra.FVar{Name: "y"}, R: algebra.FConst{V: value.Int(2)}}}},
		Var:  "y",
		Test: algebra.FCmp{Op: algebra.OpLe, L: algebra.FVar{Name: "y"}, R: algebra.FConst{V: value.Int(4)}},
	}}
	bounded := algebra.IFP{Var: "z", Body: algebra.Select{
		Of:  algebra.Union{L: inner, R: algebra.Map{Of: algebra.Rel{Name: "z"}, Var: "y", Out: algebra.FArith{Op: algebra.OpPlus, L: algebra.FVar{Name: "y"}, R: algebra.FConst{V: value.Int(10)}}}},
		Var: "y", Test: algebra.FCmp{Op: algebra.OpLt, L: algebra.FVar{Name: "y"}, R: algebra.FConst{V: value.Int(30)}},
	}}
	want, err := algebra.Eval(bounded, algebra.DB{})
	if err != nil {
		t.Fatal(err)
	}
	cp, cdb, result, err := EliminateIFP(bounded, algebra.DB{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.EvalValid(cp, cdb, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsTotal(result) || !value.Equal(res.Set(result), want) {
		t.Errorf("nested elimination = %v (undef %v), want %v", res.Set(result), res.UndefElems(result), want)
	}
}
