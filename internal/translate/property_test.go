package translate

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/datalog"
	"algrec/internal/datalog/ground"
	"algrec/internal/semantics"
	"algrec/internal/value"
)

// randomSafeProgram generates a random safe deductive program with negation:
// a pool of EDB facts over small integers, and IDB rules whose bodies start
// with positive atoms (binding all variables) followed by optional
// comparisons and negated atoms over bound variables. Every rule is safe by
// construction (Definition 4.1).
func randomSafeProgram(r *rand.Rand) *datalog.Program {
	p := &datalog.Program{}
	edb := []struct {
		name  string
		arity int
	}{{"d", 1}, {"e", 2}}
	idb := []struct {
		name  string
		arity int
	}{{"p", 1}, {"q", 1}, {"s", 2}}
	// facts
	nConst := 3 + r.Intn(3)
	for i := 0; i < 4+r.Intn(6); i++ {
		rel := edb[r.Intn(len(edb))]
		args := make([]value.Value, rel.arity)
		for j := range args {
			args[j] = value.Int(int64(r.Intn(nConst)))
		}
		p.AddFacts(datalog.Fact{Pred: rel.name, Args: args})
	}
	vars := []datalog.Var{"X", "Y", "Z"}
	all := append(append([]struct {
		name  string
		arity int
	}{}, edb...), idb...)
	// rules
	for i := 0; i < 3+r.Intn(5); i++ {
		head := idb[r.Intn(len(idb))]
		var body []datalog.Literal
		bound := map[datalog.Var]bool{}
		var boundList []datalog.Var
		// positive atoms binding variables
		for j := 0; j < 1+r.Intn(2); j++ {
			rel := all[r.Intn(len(all))]
			args := make([]datalog.Term, rel.arity)
			for k := range args {
				v := vars[r.Intn(len(vars))]
				args[k] = v
				if !bound[v] {
					bound[v] = true
					boundList = append(boundList, v)
				}
			}
			body = append(body, datalog.LitAtom{Atom: datalog.Atom{Pred: rel.name, Args: args}})
		}
		// optional comparison over bound variables
		if r.Intn(3) == 0 && len(boundList) > 0 {
			v := boundList[r.Intn(len(boundList))]
			body = append(body, datalog.Cmp(datalog.CmpOp(r.Intn(6)), v, datalog.CInt(int64(r.Intn(nConst)))))
		}
		// optional bounded arithmetic assignment: W = plus(V, 1), W < c —
		// exercises interpreted functions through every translation while
		// the guard keeps the active domain finite.
		if r.Intn(4) == 0 && len(boundList) > 0 {
			src := boundList[r.Intn(len(boundList))]
			w := datalog.Var("W")
			if !bound[w] {
				body = append(body,
					datalog.Cmp(datalog.OpEq, w, datalog.Apply{Fn: "plus", Args: []datalog.Term{src, datalog.CInt(1)}}),
					datalog.Cmp(datalog.OpLt, w, datalog.CInt(int64(nConst+2))))
				bound[w] = true
				boundList = append(boundList, w)
			}
		}
		// optional negated atoms over bound variables
		for j := r.Intn(2); j > 0 && len(boundList) > 0; j-- {
			rel := all[r.Intn(len(all))]
			args := make([]datalog.Term, rel.arity)
			for k := range args {
				args[k] = boundList[r.Intn(len(boundList))]
			}
			body = append(body, datalog.LitAtom{Neg: true, Atom: datalog.Atom{Pred: rel.name, Args: args}})
		}
		headArgs := make([]datalog.Term, head.arity)
		for k := range headArgs {
			if len(boundList) > 0 {
				headArgs[k] = boundList[r.Intn(len(boundList))]
			} else {
				headArgs[k] = datalog.CInt(0)
			}
		}
		p.Rules = append(p.Rules, datalog.Rule{Head: datalog.Atom{Pred: head.name, Args: headArgs}, Body: body})
	}
	return p
}

// TestPropertyTheorem62 is the repository's strongest single check: on
// random safe programs with negation, the valid model computed by the
// deductive engine coincides — certain AND undefined parts — with the valid
// interpretation of the Proposition 6.1 algebra= translation.
func TestPropertyTheorem62(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomSafeProgram(r)
		if err := datalog.CheckProgramSafe(p); err != nil {
			t.Logf("generator produced unsafe program: %v", err)
			return false
		}
		in, err := semantics.Eval(p, semantics.SemValid, ground.Budget{})
		if err != nil {
			t.Logf("valid eval: %v", err)
			return false
		}
		cp, db, err := DatalogToCore(p)
		if err != nil {
			t.Logf("translate: %v", err)
			return false
		}
		res, err := core.EvalValid(cp, db, algebra.Budget{})
		if err != nil {
			t.Logf("core eval: %v", err)
			return false
		}
		for _, pred := range p.IDB() {
			if !value.Equal(res.Set(pred), TrueSet(in, pred)) {
				t.Logf("seed %d: pred %s certain: core %v vs datalog %v\nprogram:\n%s",
					seed, pred, res.Set(pred), TrueSet(in, pred), p)
				return false
			}
			if !value.Equal(res.UndefElems(pred), UndefSet(in, pred)) {
				t.Logf("seed %d: pred %s undefined: core %v vs datalog %v\nprogram:\n%s",
					seed, pred, res.UndefElems(pred), UndefSet(in, pred), p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertyStratifiedTheorem43 does the same for stratified random
// programs and the positive-IFP translation: negation only against EDB
// relations keeps the program stratified.
func TestPropertyStratifiedTheorem43(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomSafeProgram(r)
		if !datalog.IsStratified(p) {
			return true // skip non-stratified draws
		}
		strat, err := datalog.Stratify(p)
		if err != nil {
			return false
		}
		g, err := ground.Ground(p, ground.Budget{})
		if err != nil {
			return false
		}
		in, err := semantics.NewEngine(g).Stratified(strat)
		if err != nil {
			return false
		}
		cp, db, err := StratifiedToPositiveIFP(p)
		if err != nil {
			t.Logf("seed %d: translate: %v", seed, err)
			return false
		}
		res, err := core.EvalValid(cp, db, algebra.Budget{})
		if err != nil {
			t.Logf("seed %d: core eval: %v", seed, err)
			return false
		}
		if !res.WellDefined() {
			t.Logf("seed %d: positive IFP translation not well defined", seed)
			return false
		}
		for _, pred := range p.IDB() {
			if !value.Equal(res.Set(pred), TrueSet(in, pred)) {
				t.Logf("seed %d: pred %s: core %v vs stratified %v\nprogram:\n%s",
					seed, pred, res.Set(pred), TrueSet(in, pred), p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertyStepIndex checks Proposition 5.2 on the random corpus.
func TestPropertyStepIndex(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomSafeProgram(r)
		g, err := ground.Ground(p, ground.Budget{})
		if err != nil {
			return false
		}
		infl, steps := semantics.NewEngine(g).Inflationary()
		si := StepIndex(p, int64(steps)+1)
		valid, err := semantics.Eval(si, semantics.SemValid, ground.Budget{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if valid.CountUndef() != 0 {
			t.Logf("seed %d: step-indexed program not two-valued", seed)
			return false
		}
		for _, pred := range p.Preds() {
			if !value.Equal(TrueSet(infl, pred), TrueSet(valid, pred)) {
				t.Logf("seed %d: pred %s: inflationary %v vs step-indexed %v\nprogram:\n%s",
					seed, pred, TrueSet(infl, pred), TrueSet(valid, pred), p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRoundTrip: datalog → algebra= → datalog preserves the valid
// model on the random corpus (Theorem 6.2 both ways, composed).
func TestPropertyRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomSafeProgram(r)
		orig, err := semantics.Eval(p, semantics.SemValid, ground.Budget{})
		if err != nil {
			return false
		}
		cp, db, err := DatalogToCore(p)
		if err != nil {
			return false
		}
		back, err := CoreToDatalog(cp)
		if err != nil {
			return false
		}
		back.AddFacts(DBFacts(db)...)
		in2, err := semantics.Eval(back, semantics.SemValid, ground.Budget{})
		if err != nil {
			return false
		}
		for _, pred := range p.IDB() {
			if !value.Equal(TrueSet(in2, pred), TrueSet(orig, pred)) ||
				!value.Equal(UndefSet(in2, pred), UndefSet(orig, pred)) {
				t.Logf("seed %d: pred %s diverged on round trip\nprogram:\n%s", seed, pred, p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCertainlyWellDefined: the local-stratification sufficient
// check never returns true for a program whose valid evaluation is
// three-valued (soundness of CertainlyWellDefined).
func TestPropertyCertainlyWellDefined(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomSafeProgram(r)
		cp, db, err := DatalogToCore(p)
		if err != nil {
			return false
		}
		sure, err := CertainlyWellDefined(cp, db)
		if err != nil {
			return false
		}
		if !sure {
			return true // inconclusive: nothing to check
		}
		res, err := core.EvalValid(cp, db, algebra.Budget{})
		if err != nil {
			return false
		}
		if !res.WellDefined() {
			t.Logf("seed %d: CertainlyWellDefined=true but evaluation is 3-valued\nprogram:\n%s", seed, p)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestCertainlyWellDefinedCases(t *testing.T) {
	// Acyclic win game: locally stratified, certainly well defined.
	dbAcyclic := algebra.DB{"move": pairsOf([2]string{"a", "b"}, [2]string{"b", "c"})}
	sure, err := CertainlyWellDefined(winCore(), dbAcyclic)
	if err != nil {
		t.Fatal(err)
	}
	if !sure {
		t.Error("acyclic game should be certainly well defined")
	}
	// Cyclic: not locally stratified — inconclusive (and in fact 3-valued).
	dbCyclic := algebra.DB{"move": pairsOf([2]string{"a", "a"})}
	sure, err = CertainlyWellDefined(winCore(), dbCyclic)
	if err != nil {
		t.Fatal(err)
	}
	if sure {
		t.Error("cyclic game must not be certified")
	}
}

// TestProposition32Construction runs the reduction in the paper's proof of
// Proposition 3.2: given a program defining a set S and an element a, the
// extended program with S' = σ_{EQ(x,a)}(S) − S' has an initial valid model
// iff a ∉ S.
func TestProposition32Construction(t *testing.T) {
	build := func(moves []datalog.Fact, probe string) (*core.Program, algebra.DB, error) {
		p := WinProgramForTest(moves)
		cp, db, err := DatalogToCore(p)
		if err != nil {
			return nil, nil, err
		}
		// S' = σ_{EQ(x, a)}(win) − S'
		sel := algebra.Select{
			Of:  algebra.Rel{Name: "win"},
			Var: "x",
			Test: algebra.FCmp{Op: algebra.OpEq,
				L: algebra.FVar{Name: "x"}, R: algebra.FConst{V: value.String(probe)}},
		}
		cp.Defs = append(cp.Defs, core.Def{Name: "sprime",
			Body: algebra.Diff{L: sel, R: algebra.Rel{Name: "sprime"}}})
		return cp, db, nil
	}
	moves := []datalog.Fact{
		{Pred: "move", Args: []value.Value{value.String("a"), value.String("b")}},
		{Pred: "move", Args: []value.Value{value.String("b"), value.String("c")}},
	}
	// win = {b}; probing with b (∈ S) must be ill-defined, probing with a
	// (∉ S) well-defined with S' empty.
	for _, tc := range []struct {
		probe string
		inS   bool
	}{{"b", true}, {"a", false}} {
		cp, db, err := build(moves, tc.probe)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.EvalValid(cp, db, algebra.Budget{})
		if err != nil {
			t.Fatal(err)
		}
		if tc.inS {
			if res.IsTotal("sprime") {
				t.Errorf("probe %s ∈ S: S' should be ill-defined, got %v", tc.probe, res.Set("sprime"))
			}
		} else {
			if !res.IsTotal("sprime") || !res.Set("sprime").IsEmpty() {
				t.Errorf("probe %s ∉ S: S' should be well-defined and empty, got %v (undef %v)",
					tc.probe, res.Set("sprime"), res.UndefElems("sprime"))
			}
		}
	}
}

// WinProgramForTest builds the win-game program over the given move facts.
func WinProgramForTest(moves []datalog.Fact) *datalog.Program {
	p := datalog.MustParse("win(X) :- move(X, Y), not win(Y).\n")
	p.AddFacts(moves...)
	return p
}

var _ = fmt.Sprintf // keep fmt imported for debug messages above
