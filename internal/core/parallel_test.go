package core

import (
	"fmt"
	"testing"

	"algrec/internal/algebra"
	"algrec/internal/obsv"
	"algrec/internal/value"
)

// wideProgram builds a program whose condensation has wide levels: k
// independent chain-closure definitions at depth 0 (one recursive SCC each),
// plus a depth-1 union of all of them and a depth-2 filtered projection — so
// the parallel rounds genuinely batch independent SCC members.
func wideProgram(k int) (*Program, algebra.DB) {
	p := &Program{}
	db := algebra.DB{}
	x := algebra.FVar{Name: "p"}
	for i := 0; i < k; i++ {
		edge := fmt.Sprintf("e%d", i)
		name := fmt.Sprintf("tc%d", i)
		elems := make([]value.Value, 0, 4)
		for j := 0; j < 4; j++ {
			elems = append(elems, value.Pair(value.Int(int64(100*i+j)), value.Int(int64(100*i+j+1))))
		}
		db[edge] = value.NewSet(elems...)
		step := algebra.Select{
			Of:  algebra.Product{L: algebra.Rel{Name: name}, R: algebra.Rel{Name: edge}},
			Var: "p",
			Test: algebra.FCmp{Op: algebra.OpEq,
				L: algebra.FField{Of: algebra.FField{Of: x, Idx: 1}, Idx: 2},
				R: algebra.FField{Of: algebra.FField{Of: x, Idx: 2}, Idx: 1}},
		}
		body := algebra.Union{L: algebra.Rel{Name: edge}, R: algebra.Map{Of: step, Var: "p",
			Out: algebra.FTuple{Elems: []algebra.FExpr{
				algebra.FField{Of: algebra.FField{Of: x, Idx: 1}, Idx: 1},
				algebra.FField{Of: algebra.FField{Of: x, Idx: 2}, Idx: 2}}}}}
		p.Defs = append(p.Defs, Def{Name: name, Body: body})
	}
	all := algebra.Expr(algebra.Rel{Name: "tc0"})
	for i := 1; i < k; i++ {
		all = algebra.Union{L: all, R: algebra.Rel{Name: fmt.Sprintf("tc%d", i)}}
	}
	p.Defs = append(p.Defs, Def{Name: "all", Body: all})
	p.Defs = append(p.Defs, Def{Name: "heads", Body: algebra.Map{
		Of: algebra.Rel{Name: "all"}, Var: "t",
		Out: algebra.FField{Of: algebra.FVar{Name: "t"}, Idx: 1}}})
	return p, db
}

// TestParallelLevelDeterminism pins the determinism contract of the parallel
// level pool: the same models AND the same obsv event counts whatever the
// worker bound (the deterministic merge makes worker count invisible except
// in the Workers stat). Run with -race this also exercises the pool's
// synchronization.
func TestParallelLevelDeterminism(t *testing.T) {
	p, db := wideProgram(6)
	type outcome struct {
		lower, upper map[string]value.Set
		infl         map[string]value.Set
		events       []obsv.CoreEvalStats
	}
	was := maxCoreWorkers
	defer func() { maxCoreWorkers = was }()
	var base *outcome
	for _, workers := range []int{1, 4, 8} {
		maxCoreWorkers = workers
		rec := &coreRecorder{}
		obsv.SetDefault(rec)
		res, err := EvalValid(p, db, algebra.Budget{})
		if err != nil {
			obsv.SetDefault(nil)
			t.Fatalf("workers=%d: %v", workers, err)
		}
		infl, err := EvalInflationary(p, db, algebra.Budget{})
		obsv.SetDefault(nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := &outcome{lower: res.Lower, upper: res.Upper, infl: infl, events: rec.events}
		if base == nil {
			base = got
			if base.lower["all"].Len() != 6*10 {
				t.Fatalf("all = %d elements, want 60", base.lower["all"].Len())
			}
			continue
		}
		if !sameSets(base.lower, got.lower) || !sameSets(base.upper, got.upper) {
			t.Errorf("workers=%d: valid model differs from workers=1", workers)
		}
		if !sameSets(base.infl, got.infl) {
			t.Errorf("workers=%d: inflationary model differs from workers=1", workers)
		}
		if len(base.events) != len(got.events) {
			t.Fatalf("workers=%d: %d CoreEval events, want %d", workers, len(got.events), len(base.events))
		}
		for i, ev := range got.events {
			want := base.events[i]
			ev.Workers, want.Workers = 0, 0
			if ev != want {
				t.Errorf("workers=%d: event %d = %+v, want %+v (modulo Workers)", workers, i, ev, want)
			}
		}
	}
}
