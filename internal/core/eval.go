package core

import (
	"fmt"

	"algrec/internal/algebra"
	"algrec/internal/obsv"
	"algrec/internal/value"
)

// Truth is the three-valued membership status of an element in a defined
// set under the valid interpretation.
type Truth uint8

// The membership truth values. The zero value is Undef.
const (
	Undef Truth = iota
	True
	False
)

// String returns "true", "false" or "undef".
func (t Truth) String() string {
	switch t {
	case True:
		return "true"
	case False:
		return "false"
	case Undef:
		return "undef"
	default:
		return "Truth(?)"
	}
}

// Result is the valid interpretation of an algebra= program on a database:
// for every defined constant, the set of elements certainly in it (Lower)
// and possibly in it (Upper). Lower ⊆ Upper; elements of Upper − Lower have
// undefined membership, and the program is well defined on the database
// exactly when the two coincide everywhere.
type Result struct {
	Lower, Upper map[string]value.Set

	db     algebra.DB
	budget algebra.Budget
}

// Member returns the membership status MEM(v, name) in the valid
// interpretation: True if certainly in, False if certainly out, Undef
// otherwise.
func (r *Result) Member(name string, v value.Value) Truth {
	lo, ok := r.Lower[name]
	if !ok {
		if s, ok := r.db[name]; ok {
			if s.Has(v) {
				return True
			}
			return False
		}
		return False
	}
	if lo.Has(v) {
		return True
	}
	if !r.Upper[name].Has(v) {
		return False
	}
	return Undef
}

// IsTotal reports whether the membership function of the named set is
// totally defined (Lower == Upper).
func (r *Result) IsTotal(name string) bool {
	return value.Equal(r.Lower[name], r.Upper[name])
}

// WellDefined reports whether every defined set is total: the executable
// counterpart of "the program has an initial valid model" for the evaluated
// database (Proposition 3.2 makes the database-independent question
// undecidable).
func (r *Result) WellDefined() bool {
	for name := range r.Lower {
		if !r.IsTotal(name) {
			return false
		}
	}
	return true
}

// UndefElems returns the elements of the named set with undefined
// membership (Upper − Lower).
func (r *Result) UndefElems(name string) value.Set {
	return r.Upper[name].Diff(r.Lower[name])
}

// Set returns the named set's certain content (its Lower bound); for a well
// defined program this is the set's content in the initial valid model.
func (r *Result) Set(name string) value.Set { return r.Lower[name] }

// dualEvaluator evaluates expressions three-valuedly: references to defined
// constants read the pos environment at positive occurrences and the neg
// environment at negative occurrences (inside an odd number of subtracted
// positions). With pos = Lower and neg = Upper it computes a certain lower
// bound; with the environments swapped, a possible upper bound.
type dualEvaluator struct {
	db       algebra.DB
	pos, neg map[string]value.Set
	budget   algebra.Budget
	obs      obsv.Collector
}

func (de *dualEvaluator) eval(e algebra.Expr, positive bool, local map[string]value.Set) (value.Set, error) {
	switch ee := e.(type) {
	case algebra.Rel:
		if s, ok := local[ee.Name]; ok {
			return s, nil
		}
		env := de.pos
		if !positive {
			env = de.neg
		}
		if s, ok := env[ee.Name]; ok {
			return s, nil
		}
		if s, ok := de.db[ee.Name]; ok {
			return s, nil
		}
		return value.Set{}, fmt.Errorf("core: unknown relation %q", ee.Name)
	case algebra.Lit:
		return ee.Set, nil
	case algebra.Union:
		l, err := de.eval(ee.L, positive, local)
		if err != nil {
			return value.Set{}, err
		}
		r, err := de.eval(ee.R, positive, local)
		if err != nil {
			return value.Set{}, err
		}
		return de.checkSize(l.Union(r))
	case algebra.Diff:
		l, err := de.eval(ee.L, positive, local)
		if err != nil {
			return value.Set{}, err
		}
		// Subtraction inverts membership: the subtrahend is evaluated at the
		// opposite polarity. This is the paper's "inversion of T and F for
		// membership" in executable form.
		r, err := de.eval(ee.R, !positive, local)
		if err != nil {
			return value.Set{}, err
		}
		return l.Diff(r), nil
	case algebra.Product:
		l, err := de.eval(ee.L, positive, local)
		if err != nil {
			return value.Set{}, err
		}
		r, err := de.eval(ee.R, positive, local)
		if err != nil {
			return value.Set{}, err
		}
		// Division-based comparison: l.Len()*r.Len() can overflow int and
		// silently skip the guard.
		if l.Len() > 0 && r.Len() > de.budget.MaxSetSize/l.Len() {
			return value.Set{}, fmt.Errorf("%w: product of %d x %d elements exceeds MaxSetSize %d", algebra.ErrBudget, l.Len(), r.Len(), de.budget.MaxSetSize)
		}
		return l.Product(r), nil
	case algebra.Select:
		// The streaming runtime's spine operators are polarity-transparent
		// (σ/MAP/∪/× preserve polarity); polarity-sensitive subexpressions
		// (Flip, defined constants) are leaves evaluated at the current
		// polarity through the closure.
		if !de.budget.NoStreaming && algebra.StreamEligible(e) {
			return algebra.StreamEval(e, de.budget, de.obs, func(sub algebra.Expr) (value.Set, error) {
				return de.eval(sub, positive, local)
			})
		}
		if prod, isProd := ee.Of.(algebra.Product); isProd && !de.budget.NoHashJoin {
			if lks, rks, ok := algebra.EquiJoinKeys(ee.Var, ee.Test); ok {
				l, err := de.eval(prod.L, positive, local)
				if err != nil {
					return value.Set{}, err
				}
				r, err := de.eval(prod.R, positive, local)
				if err != nil {
					return value.Set{}, err
				}
				out, done, err := algebra.HashJoin(l, r, ee.Var, ee.Test, lks, rks, de.budget.MaxSetSize)
				if err != nil {
					return value.Set{}, err
				}
				if done {
					return out, nil
				}
			}
		}
		of, err := de.eval(ee.Of, positive, local)
		if err != nil {
			return value.Set{}, err
		}
		return of.Select(func(v value.Value) (bool, error) {
			return algebra.EvalTest(ee.Test, algebra.FEnv{ee.Var: v})
		})
	case algebra.Map:
		if !de.budget.NoStreaming && algebra.StreamEligible(e) {
			return algebra.StreamEval(e, de.budget, de.obs, func(sub algebra.Expr) (value.Set, error) {
				return de.eval(sub, positive, local)
			})
		}
		of, err := de.eval(ee.Of, positive, local)
		if err != nil {
			return value.Set{}, err
		}
		return of.Map(func(v value.Value) (value.Value, error) {
			return algebra.EvalF(ee.Out, algebra.FEnv{ee.Var: v})
		})
	case algebra.IFP:
		// IFP is an operator with its own inflationary semantics: the
		// accumulating variable is a local binding, identical at both
		// polarities; free defined constants keep their polarity. The shared
		// fixpoint loop runs semi-naive when the body distributes over union
		// in the variable — distributivity is polarity-independent, because
		// the variable itself is a local binding.
		useDelta := !de.budget.NoSemiNaive && algebra.DeltaDistributive(ee.Body, ee.Var)
		if useDelta && !de.budget.NoIDSets && value.InterningEnabled() {
			// The leaf closure carries the current polarity and locals, so
			// the compiled constants read the same pos/neg environments the
			// value path would.
			out, ok, err := algebra.RunIFPIDSets(ee.Var, de.budget, de.obs, ee.Body, func(sub algebra.Expr) (value.Set, error) {
				return de.eval(sub, positive, local)
			})
			if ok {
				return out, err
			}
		}
		return algebra.RunIFP(ee.Var, local, de.budget, useDelta, de.obs, func(inner map[string]value.Set) (value.Set, error) {
			return de.eval(ee.Body, positive, inner)
		})
	case algebra.Flip:
		// Polarity annotation: evaluate at the opposite polarity, restoring
		// correlation in the anti-join encoding (see algebra.Flip).
		return de.eval(ee.E, !positive, local)
	case algebra.Call:
		return value.Set{}, fmt.Errorf("core: unexpanded call to %q (run Inline first)", ee.Name)
	default:
		panic(fmt.Sprintf("core: unknown Expr %T", e))
	}
}

func (de *dualEvaluator) checkSize(s value.Set) (value.Set, error) {
	if s.Len() > de.budget.MaxSetSize {
		return value.Set{}, fmt.Errorf("%w: intermediate set of %d elements exceeds MaxSetSize %d", algebra.ErrBudget, s.Len(), de.budget.MaxSetSize)
	}
	return s, nil
}

// gammaNaive computes the set-level Γ operator: the least (inflationary)
// joint fixpoint of the defining equations where negative occurrences of
// defined constants read the fixed environment neg. It is the lifting of the
// Section 2.2 rule "only facts not in T are allowed to be used negatively":
// with neg = T, an element is subtracted only if it certainly belongs to the
// subtrahend, so the result is the set of possible members; with neg = the
// possible sets, the result is the certain members.
//
// This is the reference engine, kept for Budget.NoSemiNaive (the A4
// ablation): sequential Gauss-Seidel rounds over all definitions, no
// schedule. gammaScheduled computes the identical sets.
func gammaNaive(p *Program, db algebra.DB, neg map[string]value.Set, budget algebra.Budget, obs obsv.Collector, ctr *coreCounters) (map[string]value.Set, error) {
	lower := map[string]value.Set{}
	for _, d := range p.Defs {
		lower[d.Name] = value.EmptySet
	}
	de := &dualEvaluator{db: db, pos: lower, neg: neg, budget: budget, obs: obs}
	ctr.gammas++
	for round := 0; ; round++ {
		if round >= budget.MaxIFPIters {
			return nil, fmt.Errorf("%w: defining equations did not reach a fixpoint within %d rounds", algebra.ErrBudget, budget.MaxIFPIters)
		}
		if err := budget.Stop(); err != nil {
			return nil, err
		}
		ctr.round(len(p.Defs), len(p.Defs), 1)
		changed := false
		for _, d := range p.Defs {
			s, err := de.eval(d.Body, true, nil)
			if err != nil {
				return nil, err
			}
			next := lower[d.Name].Union(s)
			if next.Len() > budget.MaxSetSize {
				return nil, fmt.Errorf("%w: defined set %q grew past MaxSetSize %d (the fixed point may be infinite)", algebra.ErrBudget, d.Name, budget.MaxSetSize)
			}
			if next.Len() != lower[d.Name].Len() {
				lower[d.Name] = next
				changed = true
			}
		}
		if !changed {
			return lower, nil
		}
	}
}

// gammaScheduled computes the same Γ fixpoint as gammaNaive, condensation
// level by condensation level (each level merges the posDeps-SCCs of equal
// depth — independent by construction — into one batch, so the parallel
// Jacobi rounds run as wide as the dependency structure allows). It is used
// only when the schedule proved Γ monotone in pos (schedule.gammaMonotone —
// negative occurrences read the fixed neg environment and no pos-environment
// read is subtracted or IFP-tainted), so evaluating the levels in topological
// order — each iterated to its own fixpoint with Jacobi rounds, re-evaluating
// only definitions whose positive inputs changed in the previous round —
// reaches the identical least fixpoint by the chaotic-iteration theorem.
func gammaScheduled(sched *schedule, p *Program, db algebra.DB, neg map[string]value.Set, budget algebra.Budget, obs obsv.Collector, ctr *coreCounters) (map[string]value.Set, error) {
	lower := map[string]value.Set{}
	for _, d := range p.Defs {
		lower[d.Name] = value.EmptySet
	}
	de := &dualEvaluator{db: db, pos: lower, neg: neg, budget: budget, obs: obs}
	ctr.gammas++
	for _, stratum := range sched.levels {
		active := stratum
		for round := 0; len(active) > 0; round++ {
			if round >= budget.MaxIFPIters {
				return nil, fmt.Errorf("%w: defining equations did not reach a fixpoint within %d rounds", algebra.ErrBudget, budget.MaxIFPIters)
			}
			if err := budget.Stop(); err != nil {
				return nil, err
			}
			results, workers, err := evalRound(de, p.Defs, active)
			if err != nil {
				return nil, err
			}
			ctr.round(len(stratum), len(active), workers)
			changed := map[int]bool{}
			for k, i := range active {
				d := p.Defs[i]
				next := lower[d.Name].Union(results[k])
				if next.Len() > budget.MaxSetSize {
					return nil, fmt.Errorf("%w: defined set %q grew past MaxSetSize %d (the fixed point may be infinite)", algebra.ErrBudget, d.Name, budget.MaxSetSize)
				}
				if next.Len() != lower[d.Name].Len() {
					lower[d.Name] = next
					changed[i] = true
				}
			}
			active = activate(stratum, sched.posDeps, changed)
		}
	}
	return lower, nil
}

// EvalValid computes the valid interpretation of the program on the
// database: the Section 2.2 alternating computation lifted to defined sets.
// The program is inlined first; recursive parameterized definitions are
// rejected (ErrRecursiveParams).
func EvalValid(p *Program, db algebra.DB, budget algebra.Budget) (*Result, error) {
	q, err := p.Inline()
	if err != nil {
		return nil, err
	}
	budget = budget.WithDefaults()
	obs := obsv.Default()
	ctr := &coreCounters{}
	var sched *schedule
	if !budget.NoSemiNaive {
		// The scheduled Γ is only equivalent to the reference engine when Γ is
		// monotone in pos (see schedule.go): a Flip under a subtrahend, or a
		// pos-environment read inside an IFP that is non-monotone in its own
		// accumulator, makes gammaNaive's inflationary Gauss-Seidel genuinely
		// order-dependent, and the reference order is the definition.
		if s := newSchedule(q); s.gammaMonotone {
			sched = s
		}
	}
	gamma := func(neg map[string]value.Set) (map[string]value.Set, error) {
		if sched != nil {
			return gammaScheduled(sched, q, db, neg, budget, obs, ctr)
		}
		return gammaNaive(q, db, neg, budget, obs, ctr)
	}
	t := map[string]value.Set{}
	for _, d := range q.Defs {
		t[d.Name] = value.EmptySet
	}
	var u map[string]value.Set
	for round := 0; ; round++ {
		if round >= budget.MaxIFPIters {
			return nil, fmt.Errorf("%w: valid-model alternation did not converge within %d rounds", algebra.ErrBudget, budget.MaxIFPIters)
		}
		if err := budget.Stop(); err != nil {
			return nil, err
		}
		u, err = gamma(t)
		if err != nil {
			return nil, err
		}
		t2, err := gamma(u)
		if err != nil {
			return nil, err
		}
		if sameSets(t, t2) {
			break
		}
		t = t2
	}
	if obs != nil {
		st := 0
		if sched != nil {
			st = len(sched.strata)
		}
		obs.CoreEval(obsv.CoreEvalStats{
			Semantics: "valid", Defs: len(q.Defs), Strata: st,
			Gammas: ctr.gammas, Rounds: ctr.rounds, Evals: ctr.evals, Skips: ctr.skips, Workers: ctr.workers,
		})
	}
	return &Result{Lower: t, Upper: u, db: db, budget: budget}, nil
}

// EvalInflationary evaluates the program under the inflationary reading of
// its equations: all occurrences of defined constants, positive or negative,
// read the current accumulated content ("was not derived so far"). It is the
// semantics under which Proposition 5.1's translation preserves IFP-algebra
// queries.
func EvalInflationary(p *Program, db algebra.DB, budget algebra.Budget) (map[string]value.Set, error) {
	q, err := p.Inline()
	if err != nil {
		return nil, err
	}
	budget = budget.WithDefaults()
	obs := obsv.Default()
	cur := map[string]value.Set{}
	for _, d := range q.Defs {
		cur[d.Name] = value.EmptySet
	}
	if budget.NoSemiNaive {
		return evalInflationaryNaive(q, db, budget, obs, cur)
	}
	// Inflationary semantics is not stratifiable — with pos = neg = cur,
	// definitions interact through negative occurrences too, and evaluating
	// them out of round order changes results (def A = {1} − B; def B = {1}:
	// A = {1} under global rounds, ∅ under strata). The schedule is used only
	// for what stays sound under global Jacobi rounds: skipping definitions
	// none of whose inputs (at either polarity: allDeps) changed in the
	// previous round — unchanged inputs mean an unchanged, already-absorbed
	// body value — and evaluating the active definitions of one round
	// concurrently.
	sched := newSchedule(q)
	ctr := &coreCounters{gammas: 1}
	all := make([]int, len(q.Defs))
	for i := range all {
		all[i] = i
	}
	active := all
	for round := 0; ; round++ {
		if round >= budget.MaxIFPIters {
			return nil, fmt.Errorf("%w: inflationary evaluation did not converge within %d rounds", algebra.ErrBudget, budget.MaxIFPIters)
		}
		if err := budget.Stop(); err != nil {
			return nil, err
		}
		de := &dualEvaluator{db: db, pos: cur, neg: cur, budget: budget, obs: obs}
		results, workers, err := evalRound(de, q.Defs, active)
		if err != nil {
			return nil, err
		}
		ctr.round(len(q.Defs), len(active), workers)
		next := make(map[string]value.Set, len(cur))
		for name, s := range cur {
			next[name] = s
		}
		changed := map[int]bool{}
		for k, i := range active {
			d := q.Defs[i]
			ns := cur[d.Name].Union(results[k])
			if ns.Len() > budget.MaxSetSize {
				return nil, fmt.Errorf("%w: defined set %q grew past MaxSetSize %d", algebra.ErrBudget, d.Name, budget.MaxSetSize)
			}
			next[d.Name] = ns
			if ns.Len() != cur[d.Name].Len() {
				changed[i] = true
			}
		}
		cur = next
		active = activate(all, sched.allDeps, changed)
		if len(active) == 0 {
			if obs != nil {
				obs.CoreEval(obsv.CoreEvalStats{
					Semantics: "inflationary", Defs: len(q.Defs), Strata: len(sched.strata),
					Gammas: ctr.gammas, Rounds: ctr.rounds, Evals: ctr.evals, Skips: ctr.skips, Workers: ctr.workers,
				})
			}
			return cur, nil
		}
	}
}

// evalInflationaryNaive is the pre-schedule engine, kept bit-for-bit for
// Budget.NoSemiNaive: sequential Jacobi rounds over all definitions.
func evalInflationaryNaive(q *Program, db algebra.DB, budget algebra.Budget, obs obsv.Collector, cur map[string]value.Set) (map[string]value.Set, error) {
	rounds, evals := 0, 0
	for round := 0; ; round++ {
		if round >= budget.MaxIFPIters {
			return nil, fmt.Errorf("%w: inflationary evaluation did not converge within %d rounds", algebra.ErrBudget, budget.MaxIFPIters)
		}
		if err := budget.Stop(); err != nil {
			return nil, err
		}
		de := &dualEvaluator{db: db, pos: cur, neg: cur, budget: budget, obs: obs}
		next := map[string]value.Set{}
		changed := false
		rounds++
		evals += len(q.Defs)
		for _, d := range q.Defs {
			s, err := de.eval(d.Body, true, nil)
			if err != nil {
				return nil, err
			}
			ns := cur[d.Name].Union(s)
			if ns.Len() > budget.MaxSetSize {
				return nil, fmt.Errorf("%w: defined set %q grew past MaxSetSize %d", algebra.ErrBudget, d.Name, budget.MaxSetSize)
			}
			next[d.Name] = ns
			if ns.Len() != cur[d.Name].Len() {
				changed = true
			}
		}
		cur = next
		if !changed {
			if obs != nil {
				obs.CoreEval(obsv.CoreEvalStats{
					Semantics: "inflationary", Defs: len(q.Defs),
					Gammas: 1, Rounds: rounds, Evals: evals, Workers: 1,
				})
			}
			return cur, nil
		}
	}
}

// QueryLower evaluates an expression over the result's database and defined
// sets, returning the certain (lower-bound) answer.
func (r *Result) QueryLower(e algebra.Expr) (value.Set, error) {
	de := &dualEvaluator{db: r.db, pos: r.Lower, neg: r.Upper, budget: r.budget, obs: obsv.Default()}
	return de.eval(e, true, nil)
}

// QueryUpper evaluates an expression over the result's database and defined
// sets, returning the possible (upper-bound) answer.
func (r *Result) QueryUpper(e algebra.Expr) (value.Set, error) {
	de := &dualEvaluator{db: r.db, pos: r.Upper, neg: r.Lower, budget: r.budget, obs: obsv.Default()}
	return de.eval(e, true, nil)
}

func sameSets(a, b map[string]value.Set) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || !value.Equal(v, w) {
			return false
		}
	}
	return true
}
