package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"algrec/internal/algebra"
	"algrec/internal/obsv"
	"algrec/internal/value"
)

// chainDB returns a database with the n edges (i, i+1) of a length-n chain
// under the given relation name.
func chainDB(name string, n int) algebra.DB {
	elems := make([]value.Value, 0, n)
	for i := 0; i < n; i++ {
		elems = append(elems, value.Pair(value.Int(int64(i)), value.Int(int64(i+1))))
	}
	return algebra.DB{name: value.NewSet(elems...)}
}

// tcDef returns the equation name = e ∪ compose(name, e): transitive closure
// as a recursive definition.
func tcDef(name string) Def {
	p := algebra.FVar{Name: "p"}
	join := algebra.Select{
		Of:  algebra.Product{L: rel(name), R: rel("e")},
		Var: "p",
		Test: algebra.FCmp{Op: algebra.OpEq,
			L: algebra.FField{Of: algebra.FField{Of: p, Idx: 1}, Idx: 2},
			R: algebra.FField{Of: algebra.FField{Of: p, Idx: 2}, Idx: 1}},
	}
	body := algebra.Union{L: rel("e"), R: algebra.Map{Of: join, Var: "p",
		Out: algebra.FTuple{Elems: []algebra.FExpr{
			algebra.FField{Of: algebra.FField{Of: p, Idx: 1}, Idx: 1},
			algebra.FField{Of: algebra.FField{Of: p, Idx: 2}, Idx: 2}}}}}
	return Def{Name: name, Body: body}
}

// randEquationProgram generates a three-definition program mixing recursion,
// negation (Diff with defined constants on the right), Flip annotations and
// IFP subexpressions — the shapes the scheduler must get right.
func randEquationProgram(r *rand.Rand) *Program {
	defs := []string{"s0", "s1", "s2"}
	var mkExpr func(depth int) algebra.Expr
	mkExpr = func(depth int) algebra.Expr {
		if depth == 0 || r.Intn(3) == 0 {
			switch r.Intn(3) {
			case 0:
				return rel("base")
			case 1:
				return rel(defs[r.Intn(len(defs))])
			default:
				return algebra.Lit{Set: ints(int64(r.Intn(5)))}
			}
		}
		x := algebra.FVar{Name: "x"}
		switch r.Intn(6) {
		case 0:
			return algebra.Union{L: mkExpr(depth - 1), R: mkExpr(depth - 1)}
		case 1:
			// negation: a defined constant may land on the right
			return algebra.Diff{L: mkExpr(depth - 1), R: mkExpr(depth - 1)}
		case 2:
			return algebra.Select{Of: mkExpr(depth - 1), Var: "x",
				Test: algebra.FCmp{Op: algebra.OpLt, L: x, R: algebra.FConst{V: value.Int(int64(r.Intn(6)))}}}
		case 3:
			return algebra.Map{Of: mkExpr(depth - 1), Var: "x",
				Out: algebra.FArith{Op: algebra.OpMod,
					L: algebra.FArith{Op: algebra.OpPlus, L: x, R: algebra.FConst{V: value.Int(1)}},
					R: algebra.FConst{V: value.Int(7)}}}
		case 4:
			return algebra.Flip{E: mkExpr(depth - 1)}
		default:
			return algebra.IFP{Var: "acc", Body: algebra.Union{L: rel("acc"), R: mkExpr(depth - 1)}}
		}
	}
	p := &Program{}
	for _, name := range defs {
		p.Defs = append(p.Defs, Def{Name: name, Body: mkExpr(3)})
	}
	return p
}

// TestPropertySemiNaiveValidEquivalence: the scheduled engine (SCC strata,
// delta-tracked skipping, parallel rounds) computes the same valid
// interpretation as the naive sequential engine on random programs with
// negation.
func TestPropertySemiNaiveValidEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randEquationProgram(r)
		db := algebra.DB{"base": ints(1, 2, 3)}
		budget := algebra.Budget{MaxIFPIters: 1000, MaxSetSize: 10000}
		naiveB := budget
		naiveB.NoSemiNaive = true
		sRes, sErr := EvalValid(p, db, budget)
		nRes, nErr := EvalValid(p, db, naiveB)
		if sErr != nil || nErr != nil {
			return true // budget blowups may strike the two engines at different rounds
		}
		if !sameSets(sRes.Lower, nRes.Lower) || !sameSets(sRes.Upper, nRes.Upper) {
			t.Logf("seed %d: valid interpretations differ\nscheduled: %v / %v\nnaive: %v / %v\nprogram:\n%s",
				seed, sRes.Lower, sRes.Upper, nRes.Lower, nRes.Upper, p)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertySemiNaiveInflationaryEquivalence: same for the inflationary
// semantics, whose scheduler may only skip and parallelize — never reorder.
func TestPropertySemiNaiveInflationaryEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randEquationProgram(r)
		db := algebra.DB{"base": ints(1, 2, 3)}
		budget := algebra.Budget{MaxIFPIters: 1000, MaxSetSize: 10000}
		naiveB := budget
		naiveB.NoSemiNaive = true
		s, sErr := EvalInflationary(p, db, budget)
		n, nErr := EvalInflationary(p, db, naiveB)
		if sErr != nil || nErr != nil {
			return true
		}
		if !sameSets(s, n) {
			t.Logf("seed %d: inflationary results differ: %v vs %v\nprogram:\n%s", seed, s, n, p)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestInflationaryStratificationCounterexample pins why EvalInflationary
// keeps global rounds: under pos = neg = cur the equations interact through
// negation, and evaluating def-by-def to fixpoint changes results. With
// a = {1} − b and b = {1}, round 0 evaluates both against the empty state, so
// a receives 1 before b blocks it.
func TestInflationaryStratificationCounterexample(t *testing.T) {
	p := &Program{Defs: []Def{
		{Name: "a", Body: algebra.Diff{L: algebra.Lit{Set: ints(1)}, R: rel("b")}},
		{Name: "b", Body: algebra.Lit{Set: ints(1)}},
	}}
	for _, noSemiNaive := range []bool{false, true} {
		got, err := EvalInflationary(p, algebra.DB{}, algebra.Budget{NoSemiNaive: noSemiNaive})
		if err != nil {
			t.Fatal(err)
		}
		if !value.Equal(got["a"], ints(1)) || !value.Equal(got["b"], ints(1)) {
			t.Errorf("NoSemiNaive=%v: got a=%v b=%v, want a={1} b={1}", noSemiNaive, got["a"], got["b"])
		}
	}
}

// coreRecorder captures CoreEvalStats events.
type coreRecorder struct {
	obsv.Nop
	events []obsv.CoreEvalStats
}

func (c *coreRecorder) CoreEval(s obsv.CoreEvalStats) { c.events = append(c.events, s) }

// TestCoreEvalCounters pins the scheduler's observability on a hand-computed
// program: transitive closure of a length-3 chain plus one independent
// definition.
//
// Valid semantics: the posDeps graph has two singleton SCCs ([tc] with a
// self-loop, [d]), both at condensation depth 0, so they merge into one
// level. Each Γ pass runs the level for 4 rounds (tc growth 3, 2, 1, 0);
// round 0 evaluates both defs and d — no posDeps — is skip-tracked in the 3
// later rounds: 4 rounds, 5 evaluations, 3 skips per Γ. The alternation
// needs 4 Γ passes (empty → fixpoint → confirm, twice).
//
// Inflationary semantics: global Jacobi rounds. Round 0 evaluates both defs;
// d has no inputs, so the delta tracker skips it in every later round, and
// tc runs 3 more rounds (growth 2, 1, 0): 4 rounds, 5 evaluations, 3 skips.
func TestCoreEvalCounters(t *testing.T) {
	p := &Program{Defs: []Def{
		tcDef("tc"),
		{Name: "d", Body: algebra.Lit{Set: ints(99)}},
	}}
	db := chainDB("e", 3)

	rec := &coreRecorder{}
	obsv.SetDefault(rec)
	defer obsv.SetDefault(nil)

	if _, err := EvalValid(p, db, algebra.Budget{}); err != nil {
		t.Fatal(err)
	}
	if len(rec.events) != 1 {
		t.Fatalf("valid: %d CoreEval events, want 1", len(rec.events))
	}
	v := rec.events[0]
	// Workers depends on GOMAXPROCS (round 0 has two independent defs), so
	// compare it separately.
	if v.Workers < 1 {
		t.Errorf("valid workers = %d, want >= 1", v.Workers)
	}
	v.Workers = 0
	want := obsv.CoreEvalStats{Semantics: "valid", Defs: 2, Strata: 2, Gammas: 4, Rounds: 16, Evals: 20, Skips: 12}
	if v != want {
		t.Errorf("valid event = %+v, want %+v (modulo Workers)", v, want)
	}

	rec.events = nil
	got, err := EvalInflationary(p, db, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got["tc"].Len() != 6 || !value.Equal(got["d"], ints(99)) {
		t.Fatalf("inflationary result wrong: tc=%v d=%v", got["tc"], got["d"])
	}
	if len(rec.events) != 1 {
		t.Fatalf("inflationary: %d CoreEval events, want 1", len(rec.events))
	}
	i := rec.events[0]
	// Workers depends on GOMAXPROCS (round 0 has two independent defs), so
	// compare it separately.
	if i.Workers < 1 {
		t.Errorf("inflationary workers = %d, want >= 1", i.Workers)
	}
	i.Workers = 0
	wantI := obsv.CoreEvalStats{Semantics: "inflationary", Defs: 2, Strata: 2, Gammas: 1, Rounds: 4, Evals: 5, Skips: 3}
	if i != wantI {
		t.Errorf("inflationary event = %+v, want %+v (modulo Workers)", i, wantI)
	}
}

// TestScheduleStrata pins the dependency analysis: polarity tracking through
// Diff and Flip, IFP-binder shadowing, and dependencies-first SCC order.
func TestScheduleStrata(t *testing.T) {
	p := &Program{Defs: []Def{
		{Name: "a", Body: algebra.Union{L: rel("b"), R: algebra.Diff{L: rel("base"), R: rel("c")}}},
		{Name: "b", Body: rel("a")},
		{Name: "c", Body: algebra.IFP{Var: "b", Body: algebra.Union{L: rel("b"), R: rel("base")}}},
	}}
	sc := newSchedule(p)
	// a reads b positively and c negatively; b reads a positively; c's "b" is
	// the IFP binder, not the definition.
	if len(sc.posDeps[0]) != 1 || sc.posDeps[0][0] != 1 {
		t.Errorf("posDeps(a) = %v, want [1]", sc.posDeps[0])
	}
	if len(sc.allDeps[0]) != 2 {
		t.Errorf("allDeps(a) = %v, want [1 2]", sc.allDeps[0])
	}
	if len(sc.posDeps[2]) != 0 || len(sc.allDeps[2]) != 0 {
		t.Errorf("deps(c) = %v/%v, want none (IFP binder shadows)", sc.posDeps[2], sc.allDeps[2])
	}
	if len(sc.strata) != 2 {
		t.Fatalf("strata = %v, want 2", sc.strata)
	}
	// {a, b} is one SCC; it positively depends on nothing else, but c must
	// not come after consumers of c... c has no positive consumers, so the
	// only hard requirement is that the a-b component is one stratum.
	for _, st := range sc.strata {
		if len(st) == 2 && (st[0] != 0 || st[1] != 1) {
			t.Errorf("two-element stratum = %v, want [0 1]", st)
		}
	}
}

// TestFlipPolarityInSchedule: Flip flips the polarity of reads beneath it,
// so a def read only under Flip at top level is a negative dep (not a
// positive one), and double Flip restores positivity.
func TestFlipPolarityInSchedule(t *testing.T) {
	p := &Program{Defs: []Def{
		{Name: "a", Body: algebra.Flip{E: rel("b")}},
		{Name: "b", Body: algebra.Flip{E: algebra.Flip{E: rel("c")}}},
		{Name: "c", Body: algebra.Lit{Set: ints(1)}},
	}}
	sc := newSchedule(p)
	if len(sc.posDeps[0]) != 0 {
		t.Errorf("posDeps(a) = %v, want none (single Flip reads negatively)", sc.posDeps[0])
	}
	if len(sc.allDeps[0]) != 1 || sc.allDeps[0][0] != 1 {
		t.Errorf("allDeps(a) = %v, want [1]", sc.allDeps[0])
	}
	if len(sc.posDeps[1]) != 1 || sc.posDeps[1][0] != 2 {
		t.Errorf("posDeps(b) = %v, want [2] (double Flip is positive)", sc.posDeps[1])
	}
	if !sc.gammaMonotone {
		t.Error("gammaMonotone = false, want true (Flip alone never subtracts)")
	}
}

// TestGammaMonotoneAnalysis pins the environment-parity vs monotonicity-
// parity distinction: a pos-environment read is anti-monotone exactly when
// its subtraction parity is odd, which diverges from the environment parity
// under Flip, and an IFP body non-monotone in its own accumulator taints
// every read inside it.
func TestGammaMonotoneAnalysis(t *testing.T) {
	lit := algebra.Lit{Set: ints(1)}
	cases := []struct {
		name string
		body algebra.Expr
		want bool
	}{
		{"plain read", rel("s"), true},
		{"subtrahend reads neg: constant during gamma", algebra.Diff{L: lit, R: rel("s")}, true},
		{"flip alone reads neg: constant during gamma", algebra.Flip{E: rel("s")}, true},
		{"flipped subtrahend reads pos anti-monotonically",
			algebra.Flip{E: algebra.Diff{L: lit, R: rel("s")}}, false},
		{"flip inside subtrahend likewise",
			algebra.Diff{L: lit, R: algebra.Flip{E: rel("s")}}, false},
		{"double subtraction is monotone again",
			algebra.Diff{L: lit, R: algebra.Diff{L: lit, R: rel("s")}}, true},
		{"monotone ifp body keeps reads clean",
			algebra.IFP{Var: "acc", Body: algebra.Union{L: rel("acc"), R: rel("s")}}, true},
		{"ifp non-monotone in its accumulator taints pos reads",
			algebra.IFP{Var: "acc", Body: algebra.Union{L: rel("s"), R: algebra.Diff{L: lit, R: rel("acc")}}}, false},
		{"tainted ifp without defined reads is harmless",
			algebra.IFP{Var: "acc", Body: algebra.Diff{L: lit, R: rel("acc")}}, true},
	}
	for _, c := range cases {
		p := &Program{Defs: []Def{{Name: "t", Body: c.body}, {Name: "s", Body: lit}}}
		if got := newSchedule(p).gammaMonotone; got != c.want {
			t.Errorf("%s: gammaMonotone = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestFlippedSubtrahendRegression pins the program that exposed the
// environment/monotonicity confusion (property-test seed 4203084367423753265):
// s0 subtracts an IFP over s2 inside a Flip, so the s2 read has even
// environment parity (reads pos) but odd subtraction parity (anti-monotone).
// The reference Gauss-Seidel engine evaluates s0 before s2 has grown and the
// inflationary accumulator keeps the transient derivation {1, 2}; a
// stratified schedule would evaluate s2 first and derive ∅. EvalValid must
// detect the shape and reproduce the reference answer.
func TestFlippedSubtrahendRegression(t *testing.T) {
	x := algebra.FVar{Name: "x"}
	p := &Program{Defs: []Def{
		{Name: "s0", Body: algebra.Flip{E: algebra.Diff{
			L: algebra.Select{Of: rel("s1"), Var: "x",
				Test: algebra.FCmp{Op: algebra.OpLt, L: x, R: algebra.FConst{V: value.Int(3)}}},
			R: algebra.IFP{Var: "acc", Body: algebra.Union{L: rel("acc"), R: rel("s2")}},
		}}},
		{Name: "s1", Body: algebra.Union{L: algebra.Lit{Set: ints(3)}, R: rel("s2")}},
		{Name: "s2", Body: algebra.Flip{E: algebra.Union{
			L: algebra.IFP{Var: "acc", Body: algebra.Union{L: rel("acc"), R: algebra.Lit{Set: ints(1)}}},
			R: algebra.IFP{Var: "acc", Body: algebra.Union{L: rel("acc"), R: rel("base")}},
		}}},
	}}
	db := algebra.DB{"base": ints(1, 2, 3)}
	budget := algebra.Budget{MaxIFPIters: 1000, MaxSetSize: 10000}
	naiveB := budget
	naiveB.NoSemiNaive = true
	sRes, err := EvalValid(p, db, budget)
	if err != nil {
		t.Fatal(err)
	}
	nRes, err := EvalValid(p, db, naiveB)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSets(sRes.Lower, nRes.Lower) || !sameSets(sRes.Upper, nRes.Upper) {
		t.Errorf("engines disagree:\nscheduled: %v / %v\nnaive: %v / %v",
			sRes.Lower, sRes.Upper, nRes.Lower, nRes.Upper)
	}
	if !value.Equal(sRes.Lower["s0"], ints(1, 2)) {
		t.Errorf("s0 = %v, want {1, 2} (the reference engine's order-dependent answer)", sRes.Lower["s0"])
	}
}
