package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"algrec/internal/algebra"
	"algrec/internal/value"
)

func ints(ns ...int64) value.Set {
	elems := make([]value.Value, len(ns))
	for i, n := range ns {
		elems[i] = value.Int(n)
	}
	return value.NewSet(elems...)
}

func syms(ss ...string) value.Set {
	elems := make([]value.Value, len(ss))
	for i, s := range ss {
		elems[i] = value.String(s)
	}
	return value.NewSet(elems...)
}

func pairs(ps ...[2]string) value.Set {
	elems := make([]value.Value, len(ps))
	for i, p := range ps {
		elems[i] = value.Pair(value.String(p[0]), value.String(p[1]))
	}
	return value.NewSet(elems...)
}

func rel(n string) algebra.Rel { return algebra.Rel{Name: n} }

// winProgram is the paper's Example 3:
// WIN = π1(MOVE − ((π1 MOVE) × WIN)).
func winProgram() *Program {
	body := algebra.Proj(
		algebra.Diff{
			L: rel("move"),
			R: algebra.Product{L: algebra.Proj(rel("move"), 1), R: rel("win")},
		}, 1)
	return &Program{Defs: []Def{{Name: "win", Body: body}}}
}

// TestSelfSubtraction is the paper's S = {a} − S: "the membership status of
// a in S is undefined, and there is no initial valid model."
func TestSelfSubtraction(t *testing.T) {
	a := value.String("a")
	p := &Program{Defs: []Def{{
		Name: "s",
		Body: algebra.Diff{L: algebra.Singleton(a), R: rel("s")},
	}}}
	res, err := EvalValid(p, algebra.DB{}, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Member("s", a); got != Undef {
		t.Errorf("MEM(a, S) = %v, want undef", got)
	}
	if res.WellDefined() {
		t.Error("S = {a} − S should not be well defined")
	}
	if !value.Equal(res.UndefElems("s"), value.NewSet(a)) {
		t.Errorf("UndefElems = %v, want {a}", res.UndefElems("s"))
	}
	// But IFP_{{a}-x} = {a}: the paper's contrast between the equation and
	// the operator (Section 3.2). Inflationary reading of the same equation
	// agrees with the IFP operator.
	infl, err := EvalInflationary(p, algebra.DB{}, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(infl["s"], value.NewSet(a)) {
		t.Errorf("inflationary S = %v, want {a}", infl["s"])
	}
	ifp := algebra.IFP{Var: "x", Body: algebra.Diff{L: algebra.Singleton(a), R: rel("x")}}
	got, err := algebra.Eval(ifp, algebra.DB{})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, infl["s"]) {
		t.Error("IFP operator and inflationary equation disagree")
	}
}

func TestWinGameAcyclic(t *testing.T) {
	db := algebra.DB{"move": pairs([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"b", "d"})}
	res, err := EvalValid(winProgram(), db, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.WellDefined() {
		t.Fatalf("acyclic WIN should be well defined; undef = %v", res.UndefElems("win"))
	}
	if got := res.Member("win", value.String("b")); got != True {
		t.Errorf("win(b) = %v, want true", got)
	}
	for _, pos := range []string{"a", "c", "d"} {
		if got := res.Member("win", value.String(pos)); got != False {
			t.Errorf("win(%s) = %v, want false", pos, got)
		}
	}
	if !value.Equal(res.Set("win"), syms("b")) {
		t.Errorf("WIN = %v, want {b}", res.Set("win"))
	}
}

// TestWinGameCyclic: "If the MOVE relation contains, for example, the tuple
// [a, a], then the membership status of a in WIN will be undefined."
func TestWinGameCyclic(t *testing.T) {
	db := algebra.DB{"move": pairs([2]string{"a", "a"})}
	res, err := EvalValid(winProgram(), db, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Member("win", value.String("a")); got != Undef {
		t.Errorf("win(a) = %v, want undef", got)
	}
	if res.WellDefined() {
		t.Error("cyclic WIN should not be well defined")
	}
	// With an escape to a lost position, a still wins even on a cycle.
	db2 := algebra.DB{"move": pairs([2]string{"a", "a"}, [2]string{"a", "b"})}
	res2, err := EvalValid(winProgram(), db2, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.Member("win", value.String("a")); got != True {
		t.Errorf("win(a) = %v, want true (can move to lost b)", got)
	}
}

// TestEvenNumbers is Example 3's S_c^e = {0} ∪ MAP_{+2}(S_c^e), evaluated on
// a bounded prefix of the naturals; membership is total on the prefix: true
// for even numbers, false for odd ones.
func evenProgram(bound int64) *Program {
	x := algebra.FVar{Name: "x"}
	step := algebra.Map{Of: rel("se"), Var: "x", Out: algebra.FArith{Op: algebra.OpPlus, L: x, R: algebra.FConst{V: value.Int(2)}}}
	var body algebra.Expr = algebra.Union{L: algebra.Singleton(value.Int(0)), R: step}
	if bound > 0 {
		body = algebra.Select{
			Of:   body,
			Var:  "x",
			Test: algebra.FCmp{Op: algebra.OpLt, L: x, R: algebra.FConst{V: value.Int(bound)}},
		}
	}
	return &Program{Defs: []Def{{Name: "se", Body: body}}}
}

func TestEvenNumbers(t *testing.T) {
	res, err := EvalValid(evenProgram(20), algebra.DB{}, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.WellDefined() {
		t.Fatal("bounded even-set program should be well defined")
	}
	for i := int64(0); i < 20; i++ {
		want := False
		if i%2 == 0 {
			want = True
		}
		if got := res.Member("se", value.Int(i)); got != want {
			t.Errorf("MEM(%d, S^e) = %v, want %v", i, got, want)
		}
	}
	// Values outside the interned universe are certainly false.
	if got := res.Member("se", value.Int(100)); got != False {
		t.Errorf("MEM(100, S^e) = %v, want false", got)
	}
}

func TestEvenNumbersDiverges(t *testing.T) {
	_, err := EvalValid(evenProgram(0), algebra.DB{}, algebra.Budget{MaxIFPIters: 64, MaxSetSize: 1000})
	if !errors.Is(err, algebra.ErrBudget) {
		t.Fatalf("unbounded even set should exceed budget, got %v", err)
	}
}

// tcEquation builds tc = e ∪ compose(tc, e) — a recursive equation with a
// monotone right-hand side (no subtraction of tc).
func tcEquation(edges string) *Program {
	p := algebra.FVar{Name: "p"}
	join := algebra.Select{
		Of:  algebra.Product{L: rel("tc"), R: rel(edges)},
		Var: "p",
		Test: algebra.FCmp{Op: algebra.OpEq,
			L: algebra.FField{Of: algebra.FField{Of: p, Idx: 1}, Idx: 2},
			R: algebra.FField{Of: algebra.FField{Of: p, Idx: 2}, Idx: 1}},
	}
	compose := algebra.Map{Of: join, Var: "p", Out: algebra.FTuple{Elems: []algebra.FExpr{
		algebra.FField{Of: algebra.FField{Of: p, Idx: 1}, Idx: 1},
		algebra.FField{Of: algebra.FField{Of: p, Idx: 2}, Idx: 2},
	}}}
	return &Program{Defs: []Def{{Name: "tc", Body: algebra.Union{L: rel(edges), R: compose}}}}
}

// TestProposition34Monotone: for monotone exp, S defined by S = exp(S) and
// IFP_exp agree on membership — both true and false facts.
func TestProposition34Monotone(t *testing.T) {
	db := algebra.DB{"e": pairs([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "d"})}
	prog := tcEquation("e")
	pos, err := prog.IsPositive()
	if err != nil {
		t.Fatal(err)
	}
	if !pos {
		t.Fatal("tc equation should be positive")
	}
	res, err := EvalValid(prog, db, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.WellDefined() {
		t.Fatal("monotone equation should be well defined")
	}
	// The IFP operator applied to the same body.
	ifp := algebra.IFP{Var: "tc", Body: prog.Defs[0].Body}
	ifpRes, err := algebra.Eval(ifp, db)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(res.Set("tc"), ifpRes) {
		t.Errorf("S = %v but IFP = %v", res.Set("tc"), ifpRes)
	}
	want := pairs(
		[2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "d"},
		[2]string{"a", "c"}, [2]string{"b", "d"}, [2]string{"a", "d"})
	if !value.Equal(res.Set("tc"), want) {
		t.Errorf("tc = %v, want %v", res.Set("tc"), want)
	}
}

func TestInlineParameterizedDefs(t *testing.T) {
	// Example 3: intersection and xor as defined operations.
	inter := Def{Name: "intersect", Params: []string{"x", "y"},
		Body: algebra.Diff{L: rel("x"), R: algebra.Diff{L: rel("x"), R: rel("y")}}}
	xor := Def{Name: "xor", Params: []string{"x", "y"},
		Body: algebra.Union{
			L: algebra.Diff{L: rel("x"), R: rel("y")},
			R: algebra.Diff{L: rel("y"), R: rel("x")}}}
	p := &Program{Defs: []Def{inter, xor,
		{Name: "q1", Body: algebra.Call{Name: "intersect", Args: []algebra.Expr{rel("r"), rel("s")}}},
		{Name: "q2", Body: algebra.Call{Name: "xor", Args: []algebra.Expr{rel("r"), rel("s")}}},
		{Name: "q3", Body: algebra.Call{Name: "intersect", Args: []algebra.Expr{
			algebra.Call{Name: "xor", Args: []algebra.Expr{rel("r"), rel("s")}}, rel("r")}}},
	}}
	db := algebra.DB{"r": ints(1, 2, 3), "s": ints(2, 3, 4)}
	res, err := EvalValid(p, db, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(res.Set("q1"), ints(2, 3)) {
		t.Errorf("intersect = %v", res.Set("q1"))
	}
	if !value.Equal(res.Set("q2"), ints(1, 4)) {
		t.Errorf("xor = %v", res.Set("q2"))
	}
	if !value.Equal(res.Set("q3"), ints(1)) {
		t.Errorf("nested macro = %v", res.Set("q3"))
	}
	// Macros disappear after inlining.
	q, err := p.Inline()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Def("intersect"); ok {
		t.Error("parameterized def should be expanded away")
	}
	for _, d := range q.Defs {
		if len(algebra.CallNames(d.Body)) != 0 {
			t.Errorf("call remains after inlining: %s", d)
		}
	}
}

func TestInlineRejectsRecursiveParams(t *testing.T) {
	p := &Program{Defs: []Def{{
		Name: "f", Params: []string{"x"},
		Body: algebra.Union{L: rel("x"), R: algebra.Call{Name: "f", Args: []algebra.Expr{rel("x")}}},
	}}}
	_, err := p.Inline()
	if !errors.Is(err, ErrRecursiveParams) {
		t.Fatalf("expected ErrRecursiveParams, got %v", err)
	}
	// Mutual recursion through a parameterized def is also rejected.
	p2 := &Program{Defs: []Def{
		{Name: "g", Params: []string{"x"}, Body: rel("h")},
		{Name: "h", Body: algebra.Call{Name: "g", Args: []algebra.Expr{rel("base")}}},
	}}
	if _, err := p2.Inline(); !errors.Is(err, ErrRecursiveParams) {
		t.Fatalf("expected ErrRecursiveParams for mutual recursion, got %v", err)
	}
}

func TestInlineAvoidsCapture(t *testing.T) {
	// f(x) = ifp(t, x ∪ t): substituting an argument that itself mentions a
	// relation named t must not be captured by the binder.
	f := Def{Name: "f", Params: []string{"x"},
		Body: algebra.IFP{Var: "t", Body: algebra.Union{L: rel("x"), R: rel("t")}}}
	p := &Program{Defs: []Def{f,
		{Name: "q", Body: algebra.Call{Name: "f", Args: []algebra.Expr{rel("t")}}},
	}}
	db := algebra.DB{"t": ints(5)}
	res, err := EvalValid(p, db, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(res.Set("q"), ints(5)) {
		t.Errorf("capture-avoiding inline failed: q = %v, want {5}", res.Set("q"))
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		p       *Program
		wantSub string
	}{
		{&Program{Defs: []Def{{Name: "a", Body: rel("r")}, {Name: "a", Body: rel("r")}}}, "duplicate"},
		{&Program{Defs: []Def{{Name: "a", Params: []string{"x", "x"}, Body: rel("x")}}}, "repeats parameter"},
		{&Program{Defs: []Def{{Name: "a", Body: algebra.Call{Name: "nosuch"}}}}, "undefined operation"},
		{&Program{Defs: []Def{
			{Name: "f", Params: []string{"x"}, Body: rel("x")},
			{Name: "a", Body: algebra.Call{Name: "f"}},
		}}, "takes 1 arguments"},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Validate: got %v, want error containing %q", err, c.wantSub)
		}
	}
	ok := &Program{Defs: []Def{{Name: "a", Body: algebra.Union{L: rel("r"), R: algebra.EmptyLit}}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

func TestBaseRels(t *testing.T) {
	p := &Program{Defs: []Def{
		{Name: "a", Body: algebra.Union{L: rel("r"), R: rel("b")}},
		{Name: "b", Params: []string{"x"}, Body: algebra.Union{L: rel("x"), R: rel("s")}},
	}}
	if got := strings.Join(p.BaseRels(), ","); got != "r,s" {
		t.Errorf("BaseRels = %s, want r,s", got)
	}
}

func TestMutualRecursion(t *testing.T) {
	// Even/odd positions on a path graph via mutual recursion:
	// even = {start} ∪ step(odd), odd = step(even).
	step := func(src string) algebra.Expr {
		p := algebra.FVar{Name: "p"}
		join := algebra.Select{
			Of:  algebra.Product{L: rel(src), R: rel("e")},
			Var: "p",
			Test: algebra.FCmp{Op: algebra.OpEq,
				L: algebra.FField{Of: p, Idx: 1},
				R: algebra.FField{Of: algebra.FField{Of: p, Idx: 2}, Idx: 1}},
		}
		return algebra.Map{Of: join, Var: "p", Out: algebra.FField{Of: algebra.FField{Of: p, Idx: 2}, Idx: 2}}
	}
	p := &Program{Defs: []Def{
		{Name: "evenp", Body: algebra.Union{L: algebra.Singleton(value.Int(0)), R: step("oddp")}},
		{Name: "oddp", Body: step("evenp")},
	}}
	db := algebra.DB{"e": value.NewSet(
		value.Pair(value.Int(0), value.Int(1)),
		value.Pair(value.Int(1), value.Int(2)),
		value.Pair(value.Int(2), value.Int(3)),
	)}
	res, err := EvalValid(p, db, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.WellDefined() {
		t.Fatal("mutual positive recursion should be well defined")
	}
	if !value.Equal(res.Set("evenp"), ints(0, 2)) {
		t.Errorf("even positions = %v, want {0, 2}", res.Set("evenp"))
	}
	if !value.Equal(res.Set("oddp"), ints(1, 3)) {
		t.Errorf("odd positions = %v, want {1, 3}", res.Set("oddp"))
	}
}

func TestIsPositive(t *testing.T) {
	if ok, _ := tcEquation("e").IsPositive(); !ok {
		t.Error("tc equation should be positive")
	}
	if ok, _ := winProgram().IsPositive(); ok {
		t.Error("win program should not be positive (win occurs under subtraction)")
	}
}

func TestQueryLowerUpper(t *testing.T) {
	// Query over a program with an undefined region: q = {a,b} − win where
	// win(a) is undefined and win(b) is false (no moves from b... use a pure
	// cycle on a, plus unrelated b).
	db := algebra.DB{"move": pairs([2]string{"a", "a"})}
	res, err := EvalValid(winProgram(), db, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	q := algebra.Diff{L: algebra.Lit{Set: syms("a", "b")}, R: rel("win")}
	lo, err := res.QueryLower(q)
	if err != nil {
		t.Fatal(err)
	}
	up, err := res.QueryUpper(q)
	if err != nil {
		t.Fatal(err)
	}
	// b is certainly in (win(b) certainly false); a is possible but not
	// certain (win(a) undefined).
	if !value.Equal(lo, syms("b")) {
		t.Errorf("lower = %v, want {b}", lo)
	}
	if !value.Equal(up, syms("a", "b")) {
		t.Errorf("upper = %v, want {a, b}", up)
	}
	// Member on a base relation falls back to the database.
	if res.Member("move", value.Pair(value.String("a"), value.String("a"))) != True {
		t.Error("Member on base relation failed")
	}
	if res.Member("nosuch", value.Int(1)) != False {
		t.Error("Member on unknown name should be false")
	}
}

// TestPropertyPositiveIsWellDefined: a syntactically positive program's
// valid interpretation is two-valued (the model-existence half of Theorem
// 3.1 extended to recursive equations via Proposition 3.4), checked on
// random positive equation systems.
func TestPropertyPositiveIsWellDefined(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		defs := []string{"s0", "s1", "s2"}
		db := algebra.DB{"base": ints(1, 2, 3)}
		var mkExpr func(depth int) algebra.Expr
		mkExpr = func(depth int) algebra.Expr {
			if depth == 0 || r.Intn(3) == 0 {
				switch r.Intn(3) {
				case 0:
					return rel("base")
				case 1:
					return rel(defs[r.Intn(len(defs))])
				default:
					return algebra.Lit{Set: ints(int64(r.Intn(5)))}
				}
			}
			switch r.Intn(4) {
			case 0:
				return algebra.Union{L: mkExpr(depth - 1), R: mkExpr(depth - 1)}
			case 1:
				// subtraction of a *closed* expression keeps positivity
				return algebra.Diff{L: mkExpr(depth - 1), R: rel("base")}
			case 2:
				x := algebra.FVar{Name: "x"}
				return algebra.Select{Of: mkExpr(depth - 1), Var: "x",
					Test: algebra.FCmp{Op: algebra.OpLt, L: x, R: algebra.FConst{V: value.Int(int64(r.Intn(6)))}}}
			default:
				x := algebra.FVar{Name: "x"}
				return algebra.Map{Of: mkExpr(depth - 1), Var: "x",
					Out: algebra.FArith{Op: algebra.OpMod, L: x, R: algebra.FConst{V: value.Int(7)}}}
			}
		}
		p := &Program{}
		for _, name := range defs {
			p.Defs = append(p.Defs, Def{Name: name, Body: mkExpr(3)})
		}
		pos, err := p.IsPositive()
		if err != nil || !pos {
			// The generator may place a defined name inside a map/select fed
			// into a Diff-left only; Diff-R is always "base", so positivity
			// must hold by construction.
			t.Logf("seed %d: IsPositive = %v, %v", seed, pos, err)
			return false
		}
		res, err := EvalValid(p, db, algebra.Budget{MaxIFPIters: 2000, MaxSetSize: 10000})
		if err != nil {
			return true // budget blowups are acceptable draws
		}
		if !res.WellDefined() {
			t.Logf("seed %d: positive program not well defined:\n%s", seed, p)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFlipInCore(t *testing.T) {
	// flip(win) under a subtraction reads the same bound as the minuend:
	// q = win − flip(win) is certainly empty even when win has an undefined
	// region, while q' = win − win (no annotation) has an undefined region.
	db := algebra.DB{"move": pairs([2]string{"a", "a"})}
	p := winProgram()
	p.Defs = append(p.Defs,
		Def{Name: "q", Body: algebra.Diff{L: rel("win"), R: algebra.Flip{E: rel("win")}}},
		Def{Name: "qq", Body: algebra.Diff{L: rel("win"), R: rel("win")}},
	)
	res, err := EvalValid(p, db, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsTotal("q") || !res.Set("q").IsEmpty() {
		t.Errorf("win − flip(win) = %v (undef %v), want certainly empty", res.Set("q"), res.UndefElems("q"))
	}
	if res.IsTotal("qq") {
		t.Error("win − win without annotation should stay undefined on the cycle")
	}
}

// TestPropertyQueryBounds: for any query expression over a program's
// results, the certain answer is contained in the possible answer, and on
// well-defined programs the two coincide.
func TestPropertyQueryBounds(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Win game over a random move relation: sometimes well defined,
		// sometimes not — both cases matter here.
		n := 3 + r.Intn(4)
		var moves []value.Value
		for i := 0; i < 2*n; i++ {
			moves = append(moves, value.Pair(value.Int(int64(r.Intn(n))), value.Int(int64(r.Intn(n)))))
		}
		db := algebra.DB{"move": value.NewSet(moves...)}
		res, err := EvalValid(winProgram(), db, algebra.Budget{})
		if err != nil {
			return false
		}
		// A query mixing the defined set positively and negatively.
		q := algebra.Union{
			L: algebra.Diff{L: algebra.Proj(rel("move"), 2), R: rel("win")},
			R: algebra.Select{Of: rel("win"), Var: "x",
				Test: algebra.FCmp{Op: algebra.OpLt, L: algebra.FVar{Name: "x"}, R: algebra.FConst{V: value.Int(int64(n / 2))}}},
		}
		lo, err := res.QueryLower(q)
		if err != nil {
			return false
		}
		up, err := res.QueryUpper(q)
		if err != nil {
			return false
		}
		if !lo.Subset(up) {
			t.Logf("seed %d: lower %v not within upper %v", seed, lo, up)
			return false
		}
		if res.WellDefined() && !value.Equal(lo, up) {
			t.Logf("seed %d: well-defined program but query bounds differ: %v vs %v", seed, lo, up)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDefString(t *testing.T) {
	d := Def{Name: "f", Params: []string{"x", "y"}, Body: algebra.Union{L: rel("x"), R: rel("y")}}
	if got := d.String(); got != "def f(x, y) = union(x, y);" {
		t.Errorf("Def.String = %q", got)
	}
	c := Def{Name: "s", Body: rel("r")}
	if got := c.String(); got != "def s = r;" {
		t.Errorf("constant Def.String = %q", got)
	}
	p := &Program{Defs: []Def{c}}
	if got := p.String(); got != "def s = r;\n" {
		t.Errorf("Program.String = %q", got)
	}
	if got := strings.Join(p.DefNames(), ","); got != "s" {
		t.Errorf("DefNames = %q", got)
	}
}
