package core

import (
	"runtime"
	"sort"
	"sync"

	"algrec/internal/algebra"
	"algrec/internal/value"
)

// This file builds the evaluation schedule for an inlined program's defining
// equations: a dependency graph over the defined constants, its strongly-
// connected components in topological (dependencies-first) order, and a
// bounded worker pool that evaluates independent definitions of one round
// concurrently with a deterministic merge. The scheduled engine computes the
// same sets as the naive sequential one (gammaNaive) whenever Γ is monotone
// in the pos environment: then by the chaotic-iteration theorem any fair
// update order reaches the identical least fixpoint, and sets are canonical,
// so equal sets are identical representations. Budget.NoSemiNaive restores
// the naive engine.
//
// The analysis tracks two parities per occurrence of a defined constant,
// because the evaluator's two inverters differ semantically:
//
//   - environment parity (which of pos/neg the occurrence reads): toggled by
//     both Diff's right operand and Flip — Flip's whole point is to switch
//     the environment without subtracting.
//   - monotonicity parity (whether the occurrence's value contributes
//     positively or through a subtraction): toggled by Diff's right operand
//     only, because Flip is the identity on values.
//
// The two agree except under Flip. An occurrence with an odd number of
// enclosing Flips and an odd number of enclosing subtrahend positions —
// e.g. x in flip(diff(y, x)) — reads the evolving pos environment but is
// subtracted, making Γ anti-monotone in that input. The inflationary
// Gauss-Seidel reference engine then genuinely depends on its update order
// (a transient small pos value can derive elements the final value would
// not, and the inflationary accumulator keeps them), so gammaMonotone is
// false and EvalValid falls back to gammaNaive for the whole program.
//
// Two dependency relations are tracked, because the two core semantics can
// exploit different structure:
//
//   - posDeps: defined constants read from the pos environment (environment
//     parity even). During one Γ pass only these read the evolving pos
//     environment, so they alone drive gamma's strata and its
//     skip-unchanged tracking.
//   - allDeps: defined constants read at either polarity. EvalInflationary
//     sets pos = neg = the current accumulation, so every occurrence is an
//     input; a definition may be skipped in a round only when none of its
//     allDeps changed in the previous round. Inflationary evaluation is NOT
//     stratifiable (def A = {1} − B; def B = {1} gives A = {1} under global
//     rounds but A = ∅ under strata), so it keeps global rounds and uses the
//     schedule only for skipping and parallelism — both sound regardless of
//     monotonicity, since a skipped definition's inputs, and hence its
//     already-absorbed body value, are unchanged.
type schedule struct {
	index   map[string]int // defined name -> index into the program's Defs
	posDeps [][]int        // per def: sorted pos-environment deps
	allDeps [][]int        // per def: sorted any-polarity deps
	strata  [][]int        // SCCs of the posDeps graph, dependencies first
	// levels groups the strata by condensation depth: two SCCs at the same
	// depth have no posDeps path between them (an edge would order their
	// depths), so their members can iterate to their joint fixpoint in the
	// same Jacobi rounds — one wider parallel batch per level instead of one
	// narrow batch per SCC. Under gammaMonotone the chaotic-iteration
	// theorem gives the identical least fixpoint; members keep definition
	// order inside each level, so the merge stays deterministic.
	levels [][]int
	// gammaMonotone reports that no occurrence reads the pos environment
	// anti-monotonically (odd Flips under odd subtractions), so Γ is monotone
	// in pos and gammaScheduled computes gammaNaive's fixpoint.
	gammaMonotone bool
}

// newSchedule analyzes an inlined program (no Call nodes, 0-ary defs).
func newSchedule(p *Program) *schedule {
	sc := &schedule{index: make(map[string]int, len(p.Defs)), gammaMonotone: true}
	for i, d := range p.Defs {
		sc.index[d.Name] = i
	}
	sc.posDeps = make([][]int, len(p.Defs))
	sc.allDeps = make([][]int, len(p.Defs))
	for i, d := range p.Defs {
		pos, all := map[int]bool{}, map[int]bool{}
		sc.depWalk(d.Body, true, true, false, nil, pos, all)
		sc.posDeps[i] = sortedKeys(pos)
		sc.allDeps[i] = sortedKeys(all)
	}
	sc.strata = tarjanSCC(len(p.Defs), sc.posDeps)
	sc.levels = condensationLevels(len(p.Defs), sc.posDeps, sc.strata)
	return sc
}

// condensationLevels assigns each SCC a depth — 1 + the maximum depth of the
// SCCs its members depend on (0 for none) — and returns the defs of each
// depth as one level, sorted by definition index. strata arrive
// dependencies-first, so a single pass computes the depths.
func condensationLevels(n int, deps [][]int, strata [][]int) [][]int {
	sccOf := make([]int, n)
	for s, comp := range strata {
		for _, i := range comp {
			sccOf[i] = s
		}
	}
	depth := make([]int, len(strata))
	maxDepth := 0
	for s, comp := range strata {
		d := 0
		for _, i := range comp {
			for _, dep := range deps[i] {
				if ds := sccOf[dep]; ds != s && depth[ds]+1 > d {
					d = depth[ds] + 1
				}
			}
		}
		depth[s] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	levels := make([][]int, maxDepth+1)
	for s, comp := range strata {
		levels[depth[s]] = append(levels[depth[s]], comp...)
	}
	for _, l := range levels {
		sort.Ints(l)
	}
	return levels
}

// depWalk records the defined constants e reads, by polarity. positive is
// the environment parity (which of pos/neg a Rel reads — the dual
// evaluator's polarity flag); mono is the monotonicity parity (whether the
// occurrence's value is subtracted an even number of times). Diff's right
// operand toggles both; Flip toggles only positive. tainted marks positions
// inside an IFP whose body is non-monotone in its own accumulator: such an
// IFP's value is not monotone in ANY of its free inputs (a larger input can
// grow an early accumulator and thereby suppress later derivations), so
// every pos-environment read under it is unordered. A pos-environment read
// with mono false or tainted true clears gammaMonotone. bound holds names
// shadowed by enclosing IFP binders (a Rel of a bound name is the local
// accumulator, not the defined constant).
func (sc *schedule) depWalk(e algebra.Expr, positive, mono, tainted bool, bound []string, pos, all map[int]bool) {
	switch ee := e.(type) {
	case algebra.Rel:
		for _, b := range bound {
			if b == ee.Name {
				return
			}
		}
		if i, ok := sc.index[ee.Name]; ok {
			all[i] = true
			if positive {
				pos[i] = true
				if !mono || tainted {
					sc.gammaMonotone = false
				}
			}
		}
	case algebra.Lit:
	case algebra.Union:
		sc.depWalk(ee.L, positive, mono, tainted, bound, pos, all)
		sc.depWalk(ee.R, positive, mono, tainted, bound, pos, all)
	case algebra.Diff:
		sc.depWalk(ee.L, positive, mono, tainted, bound, pos, all)
		sc.depWalk(ee.R, !positive, !mono, tainted, bound, pos, all)
	case algebra.Product:
		sc.depWalk(ee.L, positive, mono, tainted, bound, pos, all)
		sc.depWalk(ee.R, positive, mono, tainted, bound, pos, all)
	case algebra.Select:
		sc.depWalk(ee.Of, positive, mono, tainted, bound, pos, all)
	case algebra.Map:
		sc.depWalk(ee.Of, positive, mono, tainted, bound, pos, all)
	case algebra.IFP:
		t := tainted || !monoInVar(ee.Body, ee.Var, true)
		sc.depWalk(ee.Body, positive, mono, t, append(bound, ee.Var), pos, all)
	case algebra.Flip:
		sc.depWalk(ee.E, !positive, mono, tainted, bound, pos, all)
	case algebra.Call:
		// Inlined programs have no Calls (the dual evaluator rejects them);
		// walking the arguments keeps the analysis conservative if one slips
		// through.
		for _, a := range ee.Args {
			sc.depWalk(a, positive, mono, tainted, bound, pos, all)
		}
	}
}

// monoInVar reports whether e is monotone in the set named name: every free
// occurrence sits under an even number of subtrahend positions (mono parity;
// Flip does not count — it switches environments, not values), and no
// occurrence is inside a nested IFP whose own accumulator is non-monotone.
// Used on IFP bodies with their binder: a body non-monotone in its
// accumulator makes the IFP value non-monotone in every input.
func monoInVar(e algebra.Expr, name string, mono bool) bool {
	switch ee := e.(type) {
	case algebra.Rel:
		return ee.Name != name || mono
	case algebra.Lit:
		return true
	case algebra.Union:
		return monoInVar(ee.L, name, mono) && monoInVar(ee.R, name, mono)
	case algebra.Diff:
		return monoInVar(ee.L, name, mono) && monoInVar(ee.R, name, !mono)
	case algebra.Product:
		return monoInVar(ee.L, name, mono) && monoInVar(ee.R, name, mono)
	case algebra.Select:
		return monoInVar(ee.Of, name, mono)
	case algebra.Map:
		return monoInVar(ee.Of, name, mono)
	case algebra.IFP:
		if ee.Var == name {
			return true // shadowed: the free name does not occur below
		}
		if !monoInVar(ee.Body, ee.Var, true) {
			// The nested IFP is non-monotone in its own accumulator; its value
			// is then monotone in name only if name does not occur at all.
			return !mentionsFree(ee.Body, name)
		}
		return monoInVar(ee.Body, name, mono)
	case algebra.Flip:
		return monoInVar(ee.E, name, mono)
	case algebra.Call:
		// Conservative: a call argument mentioning name has unknown use.
		for _, a := range ee.Args {
			if mentionsFree(a, name) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// mentionsFree reports whether name occurs free (not IFP-shadowed) in e.
func mentionsFree(e algebra.Expr, name string) bool {
	switch ee := e.(type) {
	case algebra.Rel:
		return ee.Name == name
	case algebra.Union:
		return mentionsFree(ee.L, name) || mentionsFree(ee.R, name)
	case algebra.Diff:
		return mentionsFree(ee.L, name) || mentionsFree(ee.R, name)
	case algebra.Product:
		return mentionsFree(ee.L, name) || mentionsFree(ee.R, name)
	case algebra.Select:
		return mentionsFree(ee.Of, name)
	case algebra.Map:
		return mentionsFree(ee.Of, name)
	case algebra.IFP:
		return ee.Var != name && mentionsFree(ee.Body, name)
	case algebra.Flip:
		return mentionsFree(ee.E, name)
	case algebra.Call:
		for _, a := range ee.Args {
			if mentionsFree(a, name) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// tarjanSCC returns the strongly-connected components of the graph with
// edges i -> deps[i][j]. Tarjan emits a component only after every component
// reachable from it, and edges here point user -> dependency, so components
// come out dependencies-first — the evaluation order. Members of each
// component are sorted by definition index for determinism.
func tarjanSCC(n int, deps [][]int) [][]int {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var stack []int
	var sccs [][]int
	next := 0
	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range deps[v] {
			if index[w] == unvisited {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Ints(comp)
			sccs = append(sccs, comp)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == unvisited {
			strongconnect(v)
		}
	}
	return sccs
}

// activate returns the members of stratum with a dependency (per deps) in
// changed, preserving stratum order.
func activate(stratum []int, deps [][]int, changed map[int]bool) []int {
	var out []int
	for _, i := range stratum {
		for _, d := range deps[i] {
			if changed[d] {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// maxCoreWorkers caps the worker pool for one evaluation round.
var maxCoreWorkers = runtime.GOMAXPROCS(0)

// evalRound evaluates the bodies of the active definitions against de's
// current environments — a Jacobi round: de's environments are not mutated
// until every evaluation has finished, so the evaluations are independent
// and safe to run concurrently (value.Set is immutable, collectors are
// concurrency-safe). Results come back indexed like active; the merge is the
// caller's, sequential in definition order, so parallelism never changes the
// outcome. On error the returned error is the first by definition index, the
// one the sequential engine would have hit first. The returned worker count
// is 1 for the serial path.
func evalRound(de *dualEvaluator, defs []Def, active []int) ([]value.Set, int, error) {
	results := make([]value.Set, len(active))
	if len(active) < 2 || maxCoreWorkers < 2 {
		for k, i := range active {
			s, err := de.eval(defs[i].Body, true, nil)
			if err != nil {
				return nil, 1, err
			}
			results[k] = s
		}
		return results, 1, nil
	}
	workers := maxCoreWorkers
	if workers > len(active) {
		workers = len(active)
	}
	errs := make([]error, len(active))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				k := next
				next++
				mu.Unlock()
				if k >= len(active) {
					return
				}
				results[k], errs[k] = de.eval(defs[active[k]].Body, true, nil)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, workers, err
		}
	}
	return results, workers, nil
}

// coreCounters accumulates the bookkeeping behind one CoreEvalStats event.
type coreCounters struct {
	gammas, rounds, evals, skips, workers int
}

func (c *coreCounters) round(stratumSize, activeCount, workers int) {
	c.rounds++
	c.evals += activeCount
	c.skips += stratumSize - activeCount
	if workers > c.workers {
		c.workers = workers
	}
}
