// Package core implements the paper's primary contribution: algebra= and
// IFP-algebra= (Section 3.2) — the algebra extended with general recursive
// definitions f(x1, ..., xn) = exp(x1, ..., xn) — together with their
// valid-model semantics.
//
// A Program is a set of such defining equations over the operators of
// internal/algebra. Evaluation follows the paper's Section 2.2 valid-model
// procedure, lifted from ground facts to membership facts MEM(a, S): the
// evaluator maintains a certainly-true lower bound and a possibly-true upper
// bound for every defined set and alternates the Γ operator between them
// (negative occurrences of defined sets — occurrences in a subtracted
// position — read the opposite bound). A program is *well defined* on a
// database when the two bounds meet, i.e. the valid interpretation is
// two-valued and an initial valid model exists for the queried part; the
// paper's S = {a} − S is the canonical ill-defined example, and by
// Proposition 3.2 well-definedness is undecidable in general, so the check
// here is per-database and budget-bounded.
//
// Restriction: recursion must go through 0-ary definitions (named set
// constants). Definitions with parameters are supported but are expanded as
// macros before evaluation ("interpreting functions instantiation as a
// macro, i.e. a code duplication will take place", Section 3.1), which
// requires them to be non-recursive. Every construction in the paper —
// S_c^e, WIN, S = {a} − S, and the Proposition 6.1 simulation-function
// translation — uses recursive constants only.
//
// Execution: the dual-bound evaluator shares internal/algebra's streaming
// runtime — σ/MAP pipelines over products are planned into lazy
// pushdown/hash-join iterators unless Budget.NoStreaming is set. Those
// operators are polarity-transparent, so the same pipeline serves both the
// lower- and upper-bound passes (see docs/architecture.md).
package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"algrec/internal/algebra"
)

// Def is one defining equation f(params...) = Body.
type Def struct {
	Name   string
	Params []string
	Body   algebra.Expr
}

// String returns the equation in concrete syntax.
func (d Def) String() string {
	if len(d.Params) == 0 {
		return "def " + d.Name + " = " + d.Body.String() + ";"
	}
	s := "def " + d.Name + "("
	for i, p := range d.Params {
		if i > 0 {
			s += ", "
		}
		s += p
	}
	return s + ") = " + d.Body.String() + ";"
}

// Program is an algebra= program: a list of defining equations. The paper
// allows exactly one equation per operation name.
type Program struct {
	Defs []Def
}

// Def returns the definition of name, if any.
func (p *Program) Def(name string) (Def, bool) {
	for _, d := range p.Defs {
		if d.Name == name {
			return d, true
		}
	}
	return Def{}, false
}

// DefNames returns the defined names in definition order.
func (p *Program) DefNames() []string {
	out := make([]string, len(p.Defs))
	for i, d := range p.Defs {
		out[i] = d.Name
	}
	return out
}

// String returns the program in concrete syntax, one definition per line.
func (p *Program) String() string {
	s := ""
	for _, d := range p.Defs {
		s += d.String() + "\n"
	}
	return s
}

// BaseRels returns the relation names referenced by the program that are not
// defined by it and not bound parameters — the database relations the
// program expects — sorted.
func (p *Program) BaseRels() []string {
	defined := map[string]bool{}
	for _, d := range p.Defs {
		defined[d.Name] = true
	}
	seen := map[string]bool{}
	for _, d := range p.Defs {
		params := map[string]bool{}
		for _, q := range d.Params {
			params[q] = true
		}
		for _, r := range algebra.FreeRels(d.Body) {
			if !defined[r] && !params[r] {
				seen[r] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Validate checks structural well-formedness: unique definition names,
// distinct parameters, every Call arity matching its definition, and no Call
// to an undefined name.
func (p *Program) Validate() error {
	seen := map[string]bool{}
	arity := map[string]int{}
	for _, d := range p.Defs {
		if seen[d.Name] {
			return fmt.Errorf("core: duplicate definition of %q (the paper allows one equation per operation)", d.Name)
		}
		seen[d.Name] = true
		arity[d.Name] = len(d.Params)
		ps := map[string]bool{}
		for _, q := range d.Params {
			if ps[q] {
				return fmt.Errorf("core: definition of %q repeats parameter %q", d.Name, q)
			}
			ps[q] = true
		}
	}
	var check func(e algebra.Expr) error
	check = func(e algebra.Expr) error {
		switch ee := e.(type) {
		case algebra.Rel, algebra.Lit:
			return nil
		case algebra.Union:
			if err := check(ee.L); err != nil {
				return err
			}
			return check(ee.R)
		case algebra.Diff:
			if err := check(ee.L); err != nil {
				return err
			}
			return check(ee.R)
		case algebra.Product:
			if err := check(ee.L); err != nil {
				return err
			}
			return check(ee.R)
		case algebra.Select:
			return check(ee.Of)
		case algebra.Map:
			return check(ee.Of)
		case algebra.IFP:
			return check(ee.Body)
		case algebra.Flip:
			return check(ee.E)
		case algebra.Call:
			want, ok := arity[ee.Name]
			if !ok {
				return fmt.Errorf("core: call to undefined operation %q", ee.Name)
			}
			if want != len(ee.Args) {
				return fmt.Errorf("core: %q takes %d arguments, called with %d", ee.Name, want, len(ee.Args))
			}
			for _, a := range ee.Args {
				if err := check(a); err != nil {
					return err
				}
			}
			return nil
		default:
			panic(fmt.Sprintf("core: unknown Expr %T", e))
		}
	}
	for _, d := range p.Defs {
		if err := check(d.Body); err != nil {
			return fmt.Errorf("core: in definition of %q: %w", d.Name, err)
		}
	}
	return nil
}

// recursiveDefs returns the set of definition names that participate in a
// cycle of the call/reference graph (a name counts as referenced by a Call
// node or by a free Rel occurrence).
func (p *Program) recursiveDefs() map[string]bool {
	defined := map[string]bool{}
	for _, d := range p.Defs {
		defined[d.Name] = true
	}
	adj := map[string][]string{}
	for _, d := range p.Defs {
		var refs []string
		for _, n := range algebra.CallNames(d.Body) {
			if defined[n] {
				refs = append(refs, n)
			}
		}
		for _, n := range algebra.FreeRels(d.Body) {
			if defined[n] {
				refs = append(refs, n)
			}
		}
		adj[d.Name] = refs
	}
	// A def is recursive iff it can reach itself.
	recursive := map[string]bool{}
	for _, d := range p.Defs {
		visited := map[string]bool{}
		stack := append([]string(nil), adj[d.Name]...)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == d.Name {
				recursive[d.Name] = true
				break
			}
			if visited[n] {
				continue
			}
			visited[n] = true
			stack = append(stack, adj[n]...)
		}
	}
	return recursive
}

// HasRecursion reports whether any definition participates in a reference
// cycle. A program with no recursive definitions and only positive IFP
// bodies is a positive IFP-algebra program in the sense of Theorem 4.3.
func (p *Program) HasRecursion() bool {
	return len(p.recursiveDefs()) > 0
}

// ErrRecursiveParams is returned when a parameterized definition is
// recursive; see the package comment for the restriction.
var ErrRecursiveParams = errors.New("core: recursive definitions must be 0-ary set constants (parameterized definitions are macros)")

// Inline expands every call to a parameterized (and therefore non-recursive)
// definition as a macro, and normalizes 0-ary calls to relation references.
// The result contains only 0-ary definitions whose bodies reference each
// other by name. IFP variables are renamed apart first, so substitution
// cannot capture.
func (p *Program) Inline() (*Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	recursive := p.recursiveDefs()
	for _, d := range p.Defs {
		if recursive[d.Name] && len(d.Params) > 0 {
			return nil, fmt.Errorf("%w: %q has %d parameters and is recursive", ErrRecursiveParams, d.Name, len(d.Params))
		}
	}
	fresh := &gensym{prefix: "__v"}
	byName := map[string]Def{}
	for _, d := range p.Defs {
		byName[d.Name] = d
	}
	// expand rewrites an expression, macro-expanding parameterized calls.
	// depth guards against mutual recursion missed by recursiveDefs (cannot
	// happen, but a defensive bound is cheap).
	var expand func(e algebra.Expr, depth int) (algebra.Expr, error)
	expand = func(e algebra.Expr, depth int) (algebra.Expr, error) {
		if depth > 10_000 {
			return nil, fmt.Errorf("core: macro expansion too deep")
		}
		switch ee := e.(type) {
		case algebra.Rel, algebra.Lit:
			return e, nil
		case algebra.Union:
			l, err := expand(ee.L, depth)
			if err != nil {
				return nil, err
			}
			r, err := expand(ee.R, depth)
			if err != nil {
				return nil, err
			}
			return algebra.Union{L: l, R: r}, nil
		case algebra.Diff:
			l, err := expand(ee.L, depth)
			if err != nil {
				return nil, err
			}
			r, err := expand(ee.R, depth)
			if err != nil {
				return nil, err
			}
			return algebra.Diff{L: l, R: r}, nil
		case algebra.Product:
			l, err := expand(ee.L, depth)
			if err != nil {
				return nil, err
			}
			r, err := expand(ee.R, depth)
			if err != nil {
				return nil, err
			}
			return algebra.Product{L: l, R: r}, nil
		case algebra.Select:
			of, err := expand(ee.Of, depth)
			if err != nil {
				return nil, err
			}
			return algebra.Select{Of: of, Var: ee.Var, Test: ee.Test}, nil
		case algebra.Map:
			of, err := expand(ee.Of, depth)
			if err != nil {
				return nil, err
			}
			return algebra.Map{Of: of, Var: ee.Var, Out: ee.Out}, nil
		case algebra.IFP:
			b, err := expand(ee.Body, depth)
			if err != nil {
				return nil, err
			}
			return algebra.IFP{Var: ee.Var, Body: b}, nil
		case algebra.Flip:
			inner, err := expand(ee.E, depth)
			if err != nil {
				return nil, err
			}
			return algebra.Flip{E: inner}, nil
		case algebra.Call:
			d, ok := byName[ee.Name]
			if !ok {
				return nil, fmt.Errorf("core: call to undefined operation %q", ee.Name)
			}
			if len(d.Params) == 0 {
				// 0-ary call: a reference to a recursive (or plain) constant.
				return algebra.Rel{Name: ee.Name}, nil
			}
			args := make([]algebra.Expr, len(ee.Args))
			for i, a := range ee.Args {
				ex, err := expand(a, depth+1)
				if err != nil {
					return nil, err
				}
				args[i] = ex
			}
			body := freshenIFPVars(d.Body, fresh)
			subst := map[string]algebra.Expr{}
			for i, q := range d.Params {
				subst[q] = args[i]
			}
			replaced := substRels(body, subst)
			return expand(replaced, depth+1)
		default:
			panic(fmt.Sprintf("core: unknown Expr %T", e))
		}
	}
	out := &Program{}
	for _, d := range p.Defs {
		if len(d.Params) > 0 {
			continue // macros disappear after expansion
		}
		b, err := expand(d.Body, 0)
		if err != nil {
			return nil, fmt.Errorf("core: expanding %q: %w", d.Name, err)
		}
		out.Defs = append(out.Defs, Def{Name: d.Name, Body: b})
	}
	return out, nil
}

type gensym struct {
	prefix string
	n      int
}

func (g *gensym) next() string {
	g.n++
	return g.prefix + strconv.Itoa(g.n)
}

// substRels replaces free relation references per subst, respecting IFP
// binders (a bound variable shadows a substitution of the same name).
func substRels(e algebra.Expr, subst map[string]algebra.Expr) algebra.Expr {
	if len(subst) == 0 {
		return e
	}
	switch ee := e.(type) {
	case algebra.Rel:
		if r, ok := subst[ee.Name]; ok {
			return r
		}
		return ee
	case algebra.Lit:
		return ee
	case algebra.Union:
		return algebra.Union{L: substRels(ee.L, subst), R: substRels(ee.R, subst)}
	case algebra.Diff:
		return algebra.Diff{L: substRels(ee.L, subst), R: substRels(ee.R, subst)}
	case algebra.Product:
		return algebra.Product{L: substRels(ee.L, subst), R: substRels(ee.R, subst)}
	case algebra.Select:
		return algebra.Select{Of: substRels(ee.Of, subst), Var: ee.Var, Test: ee.Test}
	case algebra.Map:
		return algebra.Map{Of: substRels(ee.Of, subst), Var: ee.Var, Out: ee.Out}
	case algebra.IFP:
		if _, shadowed := subst[ee.Var]; shadowed {
			inner := make(map[string]algebra.Expr, len(subst))
			for k, v := range subst {
				if k != ee.Var {
					inner[k] = v
				}
			}
			return algebra.IFP{Var: ee.Var, Body: substRels(ee.Body, inner)}
		}
		return algebra.IFP{Var: ee.Var, Body: substRels(ee.Body, subst)}
	case algebra.Flip:
		return algebra.Flip{E: substRels(ee.E, subst)}
	case algebra.Call:
		args := make([]algebra.Expr, len(ee.Args))
		for i, a := range ee.Args {
			args[i] = substRels(a, subst)
		}
		return algebra.Call{Name: ee.Name, Args: args}
	default:
		panic(fmt.Sprintf("core: unknown Expr %T", e))
	}
}

// freshenIFPVars alpha-renames every IFP binder in e to a fresh name so that
// substituting argument expressions into the body cannot capture their free
// relation names.
func freshenIFPVars(e algebra.Expr, g *gensym) algebra.Expr {
	switch ee := e.(type) {
	case algebra.Rel, algebra.Lit:
		return e
	case algebra.Union:
		return algebra.Union{L: freshenIFPVars(ee.L, g), R: freshenIFPVars(ee.R, g)}
	case algebra.Diff:
		return algebra.Diff{L: freshenIFPVars(ee.L, g), R: freshenIFPVars(ee.R, g)}
	case algebra.Product:
		return algebra.Product{L: freshenIFPVars(ee.L, g), R: freshenIFPVars(ee.R, g)}
	case algebra.Select:
		return algebra.Select{Of: freshenIFPVars(ee.Of, g), Var: ee.Var, Test: ee.Test}
	case algebra.Map:
		return algebra.Map{Of: freshenIFPVars(ee.Of, g), Var: ee.Var, Out: ee.Out}
	case algebra.IFP:
		nv := g.next()
		body := substRels(ee.Body, map[string]algebra.Expr{ee.Var: algebra.Rel{Name: nv}})
		return algebra.IFP{Var: nv, Body: freshenIFPVars(body, g)}
	case algebra.Flip:
		return algebra.Flip{E: freshenIFPVars(ee.E, g)}
	case algebra.Call:
		args := make([]algebra.Expr, len(ee.Args))
		for i, a := range ee.Args {
			args[i] = freshenIFPVars(a, g)
		}
		return algebra.Call{Name: ee.Name, Args: args}
	default:
		panic(fmt.Sprintf("core: unknown Expr %T", e))
	}
}

// IsPositive reports whether, after inlining, every defined name occurs only
// positively in every definition body and every IFP is positive — the
// syntactic condition under which the valid interpretation is two-valued in
// one alternation and Proposition 3.4 applies (S = exp(S) coincides with
// IFP_exp).
func (p *Program) IsPositive() (bool, error) {
	q, err := p.Inline()
	if err != nil {
		return false, err
	}
	for _, d := range q.Defs {
		if !algebra.IsPositiveIFP(d.Body) {
			return false, nil
		}
		for _, other := range q.Defs {
			if !algebra.OccursPositively(d.Body, other.Name) {
				return false, nil
			}
		}
	}
	return true, nil
}
