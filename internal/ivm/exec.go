package ivm

import (
	"errors"
	"fmt"

	"algrec/internal/algebra"
	"algrec/internal/datalog"
	"algrec/internal/value"
	"algrec/internal/value/intern"
)

// viewKind selects which state of a relation a body literal reads.
type viewKind uint8

const (
	// viewOld is the membership at the start of the batch: current rows
	// minus this batch's additions, plus its removals.
	viewOld viewKind = iota
	// viewCur is the membership right now (mid-phase working state for
	// same-unit predicates, final state for lower ones).
	viewCur
)

// errStop aborts a rule execution early (re-derivation found its target).
var errStop = errors.New("ivm: stop")

// residual is a deferred pivot argument check: a non-variable pivot argument
// whose term may reference variables bound only later in the plan, so it is
// evaluated once the whole body is bound.
type residual struct {
	term datalog.Term
	want value.Value
}

// runCtx executes one rule body plan with a pivot literal pre-bound to a
// delta row (or a head binding pre-installed), each literal reading the view
// its phase assigned.
type runCtx struct {
	e        *engine
	cr       *compiledRule
	views    []viewKind // per combined-literal index
	pivot    int        // combined-literal index, -1 when head-bound
	binding  datalog.Binding
	residual []residual
	emit     func(datalog.Fact) error
}

// runRule executes cr with the combined literal at index pivot unified
// against pivotArgs and skipped during execution; every satisfying binding
// of the remaining body reaches emit with the instantiated head. The
// unification binds bare variables directly; non-variable pivot arguments
// become residual checks. An arity mismatch simply matches nothing.
func (e *engine) runRule(cr *compiledRule, pivot int, pivotArgs []value.Value, views []viewKind, emit func(datalog.Fact) error) error {
	atom := cr.lits[pivot].atom
	if len(atom.Args) != len(pivotArgs) {
		return nil
	}
	rc := &runCtx{e: e, cr: cr, views: views, pivot: pivot, binding: datalog.Binding{}, emit: emit}
	for i, t := range atom.Args {
		if v, isVar := t.(datalog.Var); isVar {
			if old, ok := rc.binding[v]; ok {
				if old.Compare(pivotArgs[i]) != 0 {
					return nil
				}
				continue
			}
			rc.binding[v] = pivotArgs[i]
			continue
		}
		rc.residual = append(rc.residual, residual{term: t, want: pivotArgs[i]})
	}
	err := rc.step(0)
	if err == errStop {
		return nil
	}
	return err
}

// runRuleBound executes cr with an initial binding (re-derivation's
// head-bound mode) and no pivot: every body literal is evaluated against
// its assigned view. errStop from emit is not swallowed mid-plan but is not
// an error for the caller.
func (e *engine) runRuleBound(cr *compiledRule, binding datalog.Binding, views []viewKind, emit func(datalog.Fact) error) error {
	rc := &runCtx{e: e, cr: cr, views: views, pivot: -1, binding: binding, emit: emit}
	err := rc.step(0)
	if err == errStop {
		return nil
	}
	return err
}

// charge accounts one unit of join work against the batch budget.
func (rc *runCtx) charge() error {
	rc.e.work++
	if rc.e.work > rc.e.maxWork {
		return fmt.Errorf("%w: ivm batch exceeds %d join steps", algebra.ErrBudget, rc.e.maxWork)
	}
	return nil
}

// step executes the plan from step i, backtracking through matches.
func (rc *runCtx) step(i int) error {
	if i == len(rc.cr.plan.Steps) {
		return rc.finish()
	}
	st := rc.cr.plan.Steps[i]
	switch st.Kind {
	case datalog.StepMatch:
		if st.PosIdx == rc.pivot {
			return rc.step(i + 1) // the pivot is pre-bound
		}
		return rc.match(st, i)
	case datalog.StepAssign:
		v, err := datalog.EvalTerm(st.Term, rc.binding)
		if err != nil {
			return err
		}
		if old, ok := rc.binding[st.AssignVar]; ok {
			// Head-bound mode may have pre-bound the variable.
			if old.Compare(v) != 0 {
				return nil
			}
			return rc.step(i + 1)
		}
		rc.binding[st.AssignVar] = v
		err = rc.step(i + 1)
		delete(rc.binding, st.AssignVar)
		return err
	case datalog.StepTest:
		l, err := datalog.EvalTerm(st.Cmp.L, rc.binding)
		if err != nil {
			return err
		}
		r, err := datalog.EvalTerm(st.Cmp.R, rc.binding)
		if err != nil {
			return err
		}
		ok, err := datalog.EvalCmp(st.Cmp.Op, l, r)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		return rc.step(i + 1)
	default:
		return fmt.Errorf("ivm: unknown plan step kind %v", st.Kind)
	}
}

// match enumerates the atom's view, preferring the smallest index bucket
// among the argument positions already determined by the binding, and
// recurses with the atom's bare variables bound.
func (rc *runCtx) match(st datalog.PlanStep, i int) error {
	rel := rc.e.relFor(st.Atom.Pred)
	view := rc.views[st.PosIdx]

	// Determined positions: non-variable arguments are evaluable here by
	// plan construction; variables may have been bound by earlier steps.
	type probe struct {
		pos int
		id  intern.ID
	}
	var best *probe
	bestLen := -1
	for pos, t := range st.Atom.Args {
		var tv value.Value
		if v, isVar := t.(datalog.Var); isVar {
			b, ok := rc.binding[v]
			if !ok {
				continue
			}
			tv = b
		} else {
			var err error
			tv, err = datalog.EvalTerm(t, rc.binding)
			if err != nil {
				return err
			}
		}
		aid := rc.e.in.Intern(tv)
		n := len(rc.e.index(rel, pos)[aid])
		if bestLen < 0 || n < bestLen {
			best, bestLen = &probe{pos: pos, id: aid}, n
		}
	}

	try := func(id intern.ID, args []value.Value) error {
		if err := rc.charge(); err != nil {
			return err
		}
		if len(args) != len(st.Atom.Args) {
			return nil
		}
		var bound []datalog.Var
		ok := true
		for k, t := range st.Atom.Args {
			if v, isVar := t.(datalog.Var); isVar {
				if old, has := rc.binding[v]; has {
					if old.Compare(args[k]) != 0 {
						ok = false
					}
				} else {
					rc.binding[v] = args[k]
					bound = append(bound, v)
				}
			} else {
				tv, err := datalog.EvalTerm(t, rc.binding)
				if err != nil {
					for _, v := range bound {
						delete(rc.binding, v)
					}
					return err
				}
				if tv.Compare(args[k]) != 0 {
					ok = false
				}
			}
			if !ok {
				break
			}
		}
		var err error
		if ok {
			err = rc.step(i + 1)
		}
		for _, v := range bound {
			delete(rc.binding, v)
		}
		return err
	}

	if best != nil {
		for _, id := range rc.e.index(rel, best.pos)[best.id] {
			if !viewHas(rel, view, id) {
				continue
			}
			if err := try(id, viewArgs(rel, id)); err != nil {
				return err
			}
		}
		return nil
	}
	for id, args := range rel.rows {
		if view == viewOld && rel.added[id] {
			continue
		}
		if err := try(id, args); err != nil {
			return err
		}
	}
	if view == viewOld {
		for id, args := range rel.removed {
			if err := try(id, args); err != nil {
				return err
			}
		}
	}
	return nil
}

// viewHas reports membership of a row in the given view.
func viewHas(r *relation, view viewKind, id intern.ID) bool {
	if view == viewOld {
		if r.added[id] {
			return false
		}
		if _, ok := r.removed[id]; ok {
			return true
		}
	}
	_, ok := r.rows[id]
	return ok
}

// viewArgs returns a row's arguments; a row visible in any view is in rows
// or in this batch's removed map.
func viewArgs(r *relation, id intern.ID) []value.Value {
	if args, ok := r.rows[id]; ok {
		return args
	}
	return r.removed[id]
}

// finish runs once the whole body is bound: residual pivot checks first
// (they decide whether the pivot row actually matches), then the negated
// atoms against their views, then the head instantiation.
func (rc *runCtx) finish() error {
	if err := rc.charge(); err != nil {
		return err
	}
	for _, rd := range rc.residual {
		v, err := datalog.EvalTerm(rd.term, rc.binding)
		if err != nil {
			return err
		}
		if v.Compare(rd.want) != 0 {
			return nil
		}
	}
	for ni, na := range rc.cr.plan.Negs {
		if rc.cr.plan.NumPos+ni == rc.pivot {
			continue // the negated pivot is the delta source, not a filter
		}
		f, err := datalog.EvalGroundAtom(na, rc.binding)
		if err != nil {
			return err
		}
		rel := rc.e.relFor(f.Pred)
		if viewHas(rel, rc.views[rc.cr.plan.NumPos+ni], rc.e.rowID(f.Args)) {
			return nil
		}
	}
	f, err := datalog.EvalGroundAtom(rc.cr.rule.Head, rc.binding)
	if err != nil {
		return err
	}
	return rc.emit(f)
}
