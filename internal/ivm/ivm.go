// Package ivm maintains materialized query results incrementally under fact
// insertions and deletions — the serving-side counterpart of the semi-naive
// delta engines, which only grow a fixpoint from scratch.
//
// A View binds a compiled query plan (internal/query) to a database and keeps
// its Outcome current as the database mutates. Datalog plans over stratified
// programs are maintained by a delta engine (engine.go) that splits the
// predicate dependency graph into strongly connected components and picks a
// maintenance strategy per component:
//
//   - counting for non-recursive components: every derivation of a fact
//     contributes one support count, and a mutation batch adjusts counts by
//     signed semi-naive delta rules (the pivot literal enumerates the delta,
//     literals before it see the new state, literals after it the old state),
//     so membership flips exactly when the count crosses zero;
//   - DRed (delete-and-rederive) for recursive components, where counts are
//     not finitely maintainable: over-delete everything reachable from a
//     deletion, re-derive survivors from the remaining facts, then propagate
//     insertions semi-naively;
//   - recompute for everything else — non-datalog languages, non-stratified
//     programs, the stable semantics, or Budget.NoIVM — by re-executing the
//     plan and diffing the outcomes.
//
// Either way a successful Apply returns the ResultDelta between the previous
// and the new Outcome, and the maintained Outcome is bit-for-bit the outcome
// query.Execute would produce against the mutated database — the equivalence
// the dlog-ivm differential oracle (internal/diffcheck) fuzzes and the P11
// experiment measures (incremental insert maintenance vs cold re-evaluation).
// docs/architecture.md has the full decision table.
package ivm

import (
	"fmt"
	"sort"

	"algrec/internal/algebra"
	"algrec/internal/datalog"
	"algrec/internal/query"
	"algrec/internal/value"
)

// Mode says how a View is maintained.
type Mode string

// The maintenance modes.
const (
	// ModeIncremental maintains the outcome by counting/DRed delta rules.
	ModeIncremental Mode = "incremental"
	// ModeRecompute re-executes the plan on every mutation batch and diffs
	// the outcomes — the always-correct fallback, and the -noivm baseline.
	ModeRecompute Mode = "recompute"
)

// PredDelta is the change to one named part of an outcome: a datalog
// predicate, an algebra= defined constant ("def" entries are named directly,
// query statements as "query:<src>"), or the single result set of an
// expression plan (named "value"). Fact keys and set elements are rendered
// exactly as the outcome renders them, in the outcome's order.
type PredDelta struct {
	Pred         string   `json:"pred"`
	Added        []string `json:"added,omitempty"`
	Removed      []string `json:"removed,omitempty"`
	UndefAdded   []string `json:"undefAdded,omitempty"`
	UndefRemoved []string `json:"undefRemoved,omitempty"`
}

// ResultDelta is the outcome change produced by one Apply: the view's new
// version and the per-part additions and removals. Snapshot is set instead
// of Preds when the outcome has no stable per-part diff (the stable-model
// semantics, whose model list has no canonical pairing across versions);
// subscribers should then re-read the full outcome.
type ResultDelta struct {
	Version  uint64      `json:"version"`
	Snapshot bool        `json:"snapshot,omitempty"`
	Preds    []PredDelta `json:"preds,omitempty"`
}

// Empty reports whether the delta changes nothing.
func (d *ResultDelta) Empty() bool { return !d.Snapshot && len(d.Preds) == 0 }

// View is a query plan bound to a mutable database, with its outcome kept
// current across Apply calls. A View is not safe for concurrent use; the
// server serializes mutations per database.
type View struct {
	plan    *query.Plan
	opts    query.Options
	mode    Mode
	version uint64

	eng *engine // ModeIncremental

	db  algebra.DB     // ModeRecompute: current database snapshot
	out *query.Outcome // ModeRecompute: last outcome

	broken error // a failed incremental batch poisons the view
}

// New builds a View of plan over db, evaluating the initial outcome. The
// incremental engine is used for datalog plans whose program is stratified
// (negation-free for the minimal semantics), with every rule plannable,
// under the stratified, valid, well-founded or minimal semantics — the
// fragments where those semantics agree on the stratified model — provided
// interning is on and opts.Budget does not set NoIVM; every other plan gets
// the recompute fallback. The initial evaluation honors opts' budgets; its
// error is returned as-is (query.ErrorCode classifies it).
func New(plan *query.Plan, db algebra.DB, opts query.Options) (*View, error) {
	v := &View{plan: plan, opts: opts, mode: ModeRecompute}
	if incrementalOK(plan, opts) {
		eng, err := newEngine(plan, db, opts)
		if err != nil {
			return nil, err
		}
		v.mode, v.eng = ModeIncremental, eng
		return v, nil
	}
	out, err := query.Execute(plan, db, opts)
	if err != nil {
		return nil, err
	}
	v.db, v.out = db.Clone(), out
	return v, nil
}

// incrementalOK reports whether the plan is in the incrementally
// maintainable fragment under the given options.
func incrementalOK(plan *query.Plan, opts query.Options) bool {
	if plan.Language != query.LangDatalog || plan.Program == nil {
		return false
	}
	if opts.Budget.WithDefaults().NoIVM || !value.InterningEnabled() {
		return false
	}
	switch plan.Semantics {
	case query.SemStratified, query.SemValid, query.SemWellFounded:
		// Stratified programs: the three semantics compute the same total
		// model (the dlog-stratified oracle pins the agreement).
		if !datalog.IsStratified(plan.Program) {
			return false
		}
	case query.SemMinimal:
		// The minimal model is only defined engine-side for positive
		// programs; those are trivially stratified.
		for _, r := range plan.Program.Rules {
			for _, l := range r.Body {
				if la, ok := l.(datalog.LitAtom); ok && la.Neg {
					return false
				}
			}
		}
	default: // stable, inflationary
		return false
	}
	for _, r := range plan.Program.Rules {
		if r.IsFact() {
			continue
		}
		if _, err := datalog.PlanRule(r); err != nil {
			return false
		}
	}
	return true
}

// Mode returns the view's maintenance mode.
func (v *View) Mode() Mode { return v.mode }

// Version returns the number of successfully applied mutation batches.
func (v *View) Version() uint64 { return v.version }

// Outcome returns the current outcome. The result is shared, not copied;
// callers must treat it as read-only.
func (v *View) Outcome() (*query.Outcome, error) {
	if v.broken != nil {
		return nil, v.broken
	}
	if v.mode == ModeIncremental {
		return v.eng.outcome(), nil
	}
	return v.out, nil
}

// Apply applies one mutation batch — deletions first, then insertions, so a
// fact in both ends up present — and returns the outcome delta. A failed
// recompute leaves the view unchanged (the error is returned and the next
// Apply may succeed); a failed incremental batch poisons the view, because
// its state may be half-maintained, and every later call returns the error.
func (v *View) Apply(insert, del []datalog.Fact) (*ResultDelta, error) {
	if v.broken != nil {
		return nil, v.broken
	}
	var d *ResultDelta
	if v.mode == ModeIncremental {
		var err error
		d, err = v.eng.apply(insert, del)
		if err != nil {
			v.broken = fmt.Errorf("ivm: view poisoned by failed incremental batch: %w", err)
			return nil, err
		}
	} else {
		db := ApplyDB(v.db, insert, del)
		out, err := query.Execute(v.plan, db, v.opts)
		if err != nil {
			return nil, err
		}
		d = diffOutcomes(v.plan, v.out, out)
		v.db, v.out = db, out
	}
	v.version++
	d.Version = v.version
	return d, nil
}

// ApplyDB returns a copy of db with the mutation batch applied, under the
// same fact↔element mapping as query.DBFacts: a unary fact is a scalar
// element, an n-ary fact a tuple. Deletions apply before insertions;
// deleting from an unknown relation is a no-op, inserting into one creates
// it. db itself is never mutated (relations are immutable sets, so the copy
// is cheap and copy-on-write).
func ApplyDB(db algebra.DB, insert, del []datalog.Fact) algebra.DB {
	out := make(algebra.DB, len(db)+1)
	for k, s := range db {
		out[k] = s
	}
	for _, f := range del {
		s, ok := out[f.Pred]
		if !ok {
			continue
		}
		out[f.Pred] = s.Diff(value.NewSet(factElem(f)))
	}
	for _, f := range insert {
		s, ok := out[f.Pred]
		if !ok {
			s = value.EmptySet
		}
		out[f.Pred] = s.Union(value.NewSet(factElem(f)))
	}
	return out
}

// factElem maps a fact to its database element (the query.DBFacts inverse).
func factElem(f datalog.Fact) value.Value {
	if len(f.Args) == 1 {
		return f.Args[0]
	}
	return value.NewTuple(f.Args...)
}

// diffOutcomes computes the ResultDelta between two outcomes of the same
// plan. The stable semantics has no canonical model pairing, so it gets a
// Snapshot delta.
func diffOutcomes(plan *query.Plan, old, new *query.Outcome) *ResultDelta {
	d := &ResultDelta{}
	if plan.Semantics == query.SemStable {
		d.Snapshot = true
		return d
	}
	addPred := func(p PredDelta) {
		if len(p.Added)+len(p.Removed)+len(p.UndefAdded)+len(p.UndefRemoved) > 0 {
			d.Preds = append(d.Preds, p)
		}
	}
	if new.HasValue {
		add, rem := diffSets(old.Value, new.Value)
		addPred(PredDelta{Pred: "value", Added: add, Removed: rem})
		return d
	}
	if new.Datalog != nil {
		oldPreds := map[string]query.PredFacts{}
		if old.Datalog != nil {
			for _, pf := range old.Datalog.Preds {
				oldPreds[pf.Pred] = pf
			}
		}
		seen := map[string]bool{}
		for _, pf := range new.Datalog.Preds {
			seen[pf.Pred] = true
			o := oldPreds[pf.Pred]
			p := PredDelta{Pred: pf.Pred}
			p.Added, p.Removed = diffKeys(o.True, pf.True)
			p.UndefAdded, p.UndefRemoved = diffKeys(o.Undef, pf.Undef)
			addPred(p)
		}
		if old.Datalog != nil {
			for _, pf := range old.Datalog.Preds {
				if !seen[pf.Pred] {
					addPred(PredDelta{Pred: pf.Pred, Removed: pf.True, UndefRemoved: pf.Undef})
				}
			}
		}
		// Vanished predicates append after the new outcome's, so re-sort to
		// the canonical name order the incremental engine emits.
		sort.Slice(d.Preds, func(i, j int) bool { return d.Preds[i].Pred < d.Preds[j].Pred })
		return d
	}
	// algebra= defs and query answers, paired by name and statement order.
	oldDefs := map[string]query.NamedSet{}
	for _, ns := range old.Defs {
		oldDefs[ns.Name] = ns
	}
	for _, ns := range new.Defs {
		o := oldDefs[ns.Name]
		p := PredDelta{Pred: ns.Name}
		p.Added, p.Removed = diffSets(o.Set, ns.Set)
		p.UndefAdded, p.UndefRemoved = diffSets(o.Undef, ns.Undef)
		addPred(p)
	}
	for i, q := range new.Queries {
		p := PredDelta{Pred: "query:" + q.Src}
		var o query.QueryAnswer
		if i < len(old.Queries) {
			o = old.Queries[i]
		}
		p.Added, p.Removed = diffSets(o.Set, q.Set)
		p.UndefAdded, p.UndefRemoved = diffSets(o.Undef, q.Undef)
		addPred(p)
	}
	return d
}

// diffSets renders the element-wise difference of two sets (either may be
// the nil zero set) in the sets' element order.
func diffSets(old, new value.Set) (added, removed []string) {
	for _, e := range new.Diff(old).Elems() {
		added = append(added, e.String())
	}
	for _, e := range old.Diff(new).Elems() {
		removed = append(removed, e.String())
	}
	return added, removed
}

// diffKeys diffs two rendered key lists, preserving each side's order.
func diffKeys(old, new []string) (added, removed []string) {
	os := make(map[string]bool, len(old))
	for _, k := range old {
		os[k] = true
	}
	ns := make(map[string]bool, len(new))
	for _, k := range new {
		ns[k] = true
	}
	for _, k := range new {
		if !os[k] {
			added = append(added, k)
		}
	}
	for _, k := range old {
		if !ns[k] {
			removed = append(removed, k)
		}
	}
	return added, removed
}
