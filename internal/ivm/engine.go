package ivm

import (
	"fmt"
	"sort"

	"algrec/internal/algebra"
	"algrec/internal/datalog"
	"algrec/internal/datalog/ground"
	"algrec/internal/query"
	"algrec/internal/value"
	"algrec/internal/value/intern"
)

// engine is the incremental maintenance state of one stratified datalog
// plan. Facts are stored as interned row IDs (InternTuple over the interned
// arguments — the idset kernels' representation), one relation per
// predicate, and the predicate dependency graph is condensed into strongly
// connected components processed in topological order. Each batch flows
// through the components bottom-up, so when a component runs, every lower
// predicate already has its final new state and its batch membership delta.
type engine struct {
	plan   *query.Plan
	rules  []compiledRule
	rels   map[string]*relation
	units  []*unit
	unitOf map[string]*unit
	in     *intern.Interner

	budget   algebra.Budget // WithDefaults applied; Stop polled between phases
	maxFacts int            // total stored rows (from ground.Budget.MaxAtoms)
	maxWork  int            // per-batch join work (from ground.Budget.MaxRules)
	work     int
	nfacts   int
}

// compiledRule is one non-fact rule with its executable body plan and the
// combined literal order used for delta pivoting: the positive atoms by plan
// position, then the negated atoms.
type compiledRule struct {
	rule datalog.Rule
	plan datalog.BodyPlan
	lits []litRef
}

type litRef struct {
	neg  bool
	atom datalog.Atom
}

// relKind says what supports a derived row's membership.
type relKind uint8

const (
	relBase     relKind = iota // no rules: membership is base membership
	relCounting                // non-recursive: support counts
	relDRed                    // recursive: derivable flag, DRed-maintained
)

// relation is the stored state of one predicate. Current membership is
// exactly the rows map; added/removed track the in-flight batch's membership
// delta (removed keeps the row arguments so the pre-batch state stays
// enumerable); progBase/dbBase are the program's fact rules and the
// database's facts; count and derived are the per-kind support state.
type relation struct {
	name string
	kind relKind

	rows    map[intern.ID][]value.Value
	added   map[intern.ID]bool
	removed map[intern.ID][]value.Value

	progBase map[intern.ID]bool
	dbBase   map[intern.ID]bool

	count   map[intern.ID]int64 // relCounting: derivation counts
	derived map[intern.ID]bool  // relDRed: derivable flag

	// idx are lazily built per-position indexes: argument ID → row IDs. An
	// index always covers rows ∪ removed (so the old state is probeable) and
	// is kept exact by addRow/removeRow plus an end-of-batch purge.
	idx map[int]map[intern.ID][]intern.ID

	// pendingBase are the rows whose base membership this batch touched,
	// consumed when the predicate's unit runs.
	pendingBase map[intern.ID][]value.Value
}

// member reports current membership from the support state (the rows map is
// kept in sync with it at unit boundaries).
func (r *relation) member(id intern.ID) bool {
	if r.progBase[id] || r.dbBase[id] {
		return true
	}
	switch r.kind {
	case relCounting:
		return r.count[id] > 0
	case relDRed:
		return r.derived[id]
	}
	return false
}

// unit is one strongly connected component of the predicate dependency
// graph: the unit of maintenance strategy choice.
type unit struct {
	preds     map[string]bool
	order     []string // sorted
	recursive bool
	rules     []int // indices into engine.rules with head in the unit
}

// signedRow is one entry of a relation's batch membership delta.
type signedRow struct {
	id   intern.ID
	args []value.Value
	sign int // +1 added, -1 removed
}

func (r *relation) deltaRows() []signedRow {
	if len(r.added)+len(r.removed) == 0 {
		return nil
	}
	out := make([]signedRow, 0, len(r.added)+len(r.removed))
	for id := range r.added {
		out = append(out, signedRow{id, r.rows[id], +1})
	}
	for id, args := range r.removed {
		out = append(out, signedRow{id, args, -1})
	}
	return out
}

// baseFact is one base-level insertion: a database fact or (during the
// initial build) a program fact rule.
type baseFact struct {
	f    datalog.Fact
	prog bool
}

// newEngine compiles the plan's program and runs the initial evaluation as a
// mutation batch from the empty state — insertion maintenance from nothing
// is exactly a from-scratch semi-naive evaluation.
func newEngine(plan *query.Plan, db algebra.DB, opts query.Options) (*engine, error) {
	gb := opts.Ground
	if gb.MaxAtoms <= 0 {
		gb.MaxAtoms = ground.DefaultBudget.MaxAtoms
	}
	if gb.MaxRules <= 0 {
		gb.MaxRules = ground.DefaultBudget.MaxRules
	}
	e := &engine{
		plan:     plan,
		rels:     map[string]*relation{},
		unitOf:   map[string]*unit{},
		in:       intern.Global(),
		budget:   opts.Budget.WithDefaults(),
		maxFacts: gb.MaxAtoms,
		maxWork:  gb.MaxRules,
	}
	var ins []baseFact
	for _, r := range plan.Program.Rules {
		if r.IsFact() {
			f, err := datalog.EvalGroundAtom(r.Head, nil)
			if err != nil {
				return nil, err
			}
			ins = append(ins, baseFact{f: f, prog: true})
			continue
		}
		bp, err := datalog.PlanRule(r)
		if err != nil {
			return nil, err // incrementalOK pre-checked; defensive
		}
		cr := compiledRule{rule: r, plan: bp}
		for _, st := range bp.Steps {
			if st.Kind == datalog.StepMatch {
				cr.lits = append(cr.lits, litRef{atom: st.Atom})
			}
		}
		// Positive atoms in PosIdx order: plan steps emit them in that order.
		for _, na := range bp.Negs {
			cr.lits = append(cr.lits, litRef{neg: true, atom: na})
		}
		e.rules = append(e.rules, cr)
	}
	e.buildUnits()
	for _, f := range query.DBFacts(db) {
		ins = append(ins, baseFact{f: f})
	}
	if _, err := e.applyBatch(ins, nil); err != nil {
		return nil, err
	}
	return e, nil
}

// buildUnits condenses the predicate dependency graph (head → body, positive
// and negative edges) into SCCs via Tarjan's algorithm, which emits
// components in dependency order (bodies before heads), and creates the
// relations.
func (e *engine) buildUnits() {
	preds := e.plan.Program.Preds()
	adj := map[string][]string{}
	self := map[string]bool{}
	hasRules := map[string]bool{}
	for i := range e.rules {
		cr := &e.rules[i]
		h := cr.rule.Head.Pred
		hasRules[h] = true
		for _, lr := range cr.lits {
			adj[h] = append(adj[h], lr.atom.Pred)
			if lr.atom.Pred == h {
				self[h] = true
			}
		}
	}
	for p := range adj {
		sort.Strings(adj[p])
	}

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var comps [][]string
	var connect func(v string)
	connect = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				connect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			comps = append(comps, comp)
		}
	}
	for _, p := range preds {
		if _, seen := index[p]; !seen {
			connect(p)
		}
	}

	for _, comp := range comps {
		u := &unit{preds: map[string]bool{}, order: comp}
		u.recursive = len(comp) > 1 || self[comp[0]]
		for _, p := range comp {
			u.preds[p] = true
			e.unitOf[p] = u
			kind := relBase
			if hasRules[p] {
				kind = relCounting
				if u.recursive {
					kind = relDRed
				}
			}
			e.rels[p] = newRelation(p, kind)
		}
		for i := range e.rules {
			if u.preds[e.rules[i].rule.Head.Pred] {
				u.rules = append(u.rules, i)
			}
		}
		e.units = append(e.units, u)
	}
}

func newRelation(name string, kind relKind) *relation {
	return &relation{
		name:     name,
		kind:     kind,
		rows:     map[intern.ID][]value.Value{},
		added:    map[intern.ID]bool{},
		removed:  map[intern.ID][]value.Value{},
		progBase: map[intern.ID]bool{},
		dbBase:   map[intern.ID]bool{},
		count:    map[intern.ID]int64{},
		derived:  map[intern.ID]bool{},
	}
}

// relFor returns the predicate's relation, creating a base-only one for
// predicates the program never mentions (mutations may introduce them).
func (e *engine) relFor(pred string) *relation {
	if r, ok := e.rels[pred]; ok {
		return r
	}
	r := newRelation(pred, relBase)
	e.rels[pred] = r
	return r
}

// rowID interns a row as a tuple of interned argument IDs.
func (e *engine) rowID(args []value.Value) intern.ID {
	ids := make([]intern.ID, len(args))
	for i, a := range args {
		ids[i] = e.in.Intern(a)
	}
	return e.in.InternTuple(ids...)
}

// addRow makes id a current member. The index invariant (lists cover
// rows ∪ removed exactly once) makes re-adding a row removed earlier in the
// batch a pure map move.
func (e *engine) addRow(r *relation, id intern.ID, args []value.Value) error {
	if _, ok := r.rows[id]; ok {
		return nil
	}
	r.rows[id] = args
	if _, wasRemoved := r.removed[id]; wasRemoved {
		delete(r.removed, id)
	} else {
		r.added[id] = true
		for pos, m := range r.idx {
			if pos < len(args) {
				aid := e.in.Intern(args[pos])
				m[aid] = append(m[aid], id)
			}
		}
	}
	e.nfacts++
	if e.nfacts > e.maxFacts {
		return fmt.Errorf("%w: ivm stores more than %d facts", algebra.ErrBudget, e.maxFacts)
	}
	return nil
}

// removeRow makes id a non-member; its index entries stay until the
// end-of-batch purge so the old state remains probeable.
func (e *engine) removeRow(r *relation, id intern.ID) {
	args, ok := r.rows[id]
	if !ok {
		return
	}
	delete(r.rows, id)
	if r.added[id] {
		delete(r.added, id)
	} else {
		r.removed[id] = args
	}
	e.nfacts--
}

// index returns the relation's per-position index, building it on first use
// over rows ∪ removed.
func (e *engine) index(r *relation, pos int) map[intern.ID][]intern.ID {
	if r.idx == nil {
		r.idx = map[int]map[intern.ID][]intern.ID{}
	}
	m, ok := r.idx[pos]
	if ok {
		return m
	}
	m = map[intern.ID][]intern.ID{}
	fill := func(id intern.ID, args []value.Value) {
		if pos < len(args) {
			aid := e.in.Intern(args[pos])
			m[aid] = append(m[aid], id)
		}
	}
	for id, args := range r.rows {
		fill(id, args)
	}
	for id, args := range r.removed {
		fill(id, args)
	}
	r.idx[pos] = m
	return m
}

// apply runs one database mutation batch.
func (e *engine) apply(insert, del []datalog.Fact) (*ResultDelta, error) {
	ins := make([]baseFact, len(insert))
	for i, f := range insert {
		ins[i] = baseFact{f: f}
	}
	return e.applyBatch(ins, del)
}

// applyBatch updates base membership, then processes the units bottom-up,
// and finally collects the membership delta and resets the batch state.
// Deletions apply before insertions (View.Apply documents the order).
func (e *engine) applyBatch(ins []baseFact, del []datalog.Fact) (*ResultDelta, error) {
	e.work = 0
	noteBase := func(r *relation, id intern.ID, args []value.Value) {
		if r.pendingBase == nil {
			r.pendingBase = map[intern.ID][]value.Value{}
		}
		r.pendingBase[id] = args
	}
	for _, f := range del {
		r, ok := e.rels[f.Pred]
		if !ok {
			continue // deleting from an unknown predicate is a no-op
		}
		id := e.rowID(f.Args)
		if r.dbBase[id] {
			delete(r.dbBase, id)
			noteBase(r, id, f.Args)
		}
	}
	for _, bf := range ins {
		r := e.relFor(bf.f.Pred)
		id := e.rowID(bf.f.Args)
		base := r.dbBase
		if bf.prog {
			base = r.progBase
		}
		if !base[id] {
			base[id] = true
			noteBase(r, id, bf.f.Args)
		}
	}
	// Predicates outside every unit (database-only) have no rules: their
	// membership is their base membership.
	for _, r := range e.rels {
		if e.unitOf[r.name] != nil {
			continue
		}
		if err := e.finalizeBase(r); err != nil {
			return nil, err
		}
	}
	for _, u := range e.units {
		if err := e.budget.Stop(); err != nil {
			return nil, err
		}
		var err error
		if u.recursive {
			err = e.applyDRed(u)
		} else {
			err = e.applyCounting(u)
		}
		if err != nil {
			return nil, err
		}
	}
	return e.finishBatch(), nil
}

// finalizeBase syncs a no-rules relation's rows with its base membership.
func (e *engine) finalizeBase(r *relation) error {
	for id, args := range r.pendingBase {
		m := r.member(id)
		if _, have := r.rows[id]; m != have {
			if m {
				if err := e.addRow(r, id, args); err != nil {
					return err
				}
			} else {
				e.removeRow(r, id)
			}
		}
	}
	r.pendingBase = nil
	return nil
}

// applyCounting maintains a non-recursive unit (always a single predicate
// whose rule bodies only mention lower, already-final predicates). For every
// body literal with a nonempty membership delta, the delta rules pivot
// there: literals before the pivot see the new state, literals after it the
// old state, so each derivation's appearance or disappearance is counted
// exactly once; a negated pivot contributes with the opposite sign.
func (e *engine) applyCounting(u *unit) error {
	r := e.rels[u.order[0]]
	touched := map[intern.ID][]value.Value{}
	for id, args := range r.pendingBase {
		touched[id] = args
	}
	for _, ri := range u.rules {
		cr := &e.rules[ri]
		for li := range cr.lits {
			lit := cr.lits[li]
			d := e.rels[lit.atom.Pred]
			rows := d.deltaRows()
			if len(rows) == 0 {
				continue
			}
			views := make([]viewKind, len(cr.lits))
			for j := range views {
				if j > li {
					views[j] = viewOld
				} else {
					views[j] = viewCur
				}
			}
			for _, sr := range rows {
				sign := sr.sign
				if lit.neg {
					sign = -sign
				}
				err := e.runRule(cr, li, sr.args, views, func(f datalog.Fact) error {
					id := e.rowID(f.Args)
					if _, ok := touched[id]; !ok {
						touched[id] = f.Args
					}
					if c := r.count[id] + int64(sign); c == 0 {
						delete(r.count, id)
					} else {
						r.count[id] = c
					}
					return nil
				})
				if err != nil {
					return err
				}
			}
		}
	}
	for id, args := range touched {
		m := r.member(id)
		if _, have := r.rows[id]; m != have {
			if m {
				if err := e.addRow(r, id, args); err != nil {
					return err
				}
			} else {
				e.removeRow(r, id)
			}
		}
	}
	r.pendingBase = nil
	return nil
}

// predRow is a worklist entry during DRed maintenance.
type predRow struct {
	pred string
	id   intern.ID
	args []value.Value
}

// applyDRed maintains a recursive unit in the classical three phases:
//
//  1. over-delete: every row with a derivation through a destructively
//     changed fact (a removed positive / added negative lower fact, a lost
//     base row, or a cascading same-unit deletion) loses its derivable flag,
//     and its membership when no base supports it — evaluated over the old
//     state, where all those derivations are visible;
//  2. re-derive: over-deleted rows still derivable from the surviving facts
//     are restored, to fixpoint (head-bound rule execution);
//  3. insert: constructively changed lower facts, new base rows, and
//     cascading same-unit insertions propagate semi-naively over the
//     current state — sound under set semantics because derivations are
//     monotone within the phase.
func (e *engine) applyDRed(u *unit) error {
	var delWork, insWork []predRow
	overDeleted := map[string]map[intern.ID][]value.Value{}
	note := func(p string, id intern.ID, args []value.Value) {
		m, ok := overDeleted[p]
		if !ok {
			m = map[intern.ID][]value.Value{}
			overDeleted[p] = m
		}
		m[id] = args
	}

	// Base membership changes.
	for _, p := range u.order {
		r := e.rels[p]
		for id, args := range r.pendingBase {
			m := r.member(id)
			_, have := r.rows[id]
			switch {
			case have && !m:
				e.removeRow(r, id)
				delWork = append(delWork, predRow{p, id, args})
				note(p, id, args)
			case have && m && !r.progBase[id] && !r.dbBase[id]:
				// Base support vanished but a derivation keeps the row; the
				// derivation is suspect — it may only be self-supporting
				// (p(X) :- p(X)) — so over-delete it and let phase 2
				// rederive from the surviving facts.
				delete(r.derived, id)
				e.removeRow(r, id)
				delWork = append(delWork, predRow{p, id, args})
				note(p, id, args)
			case !have && m:
				if err := e.addRow(r, id, args); err != nil {
					return err
				}
				insWork = append(insWork, predRow{p, id, args})
			}
		}
		r.pendingBase = nil
	}

	// Phase 1: over-delete. All non-pivot literals read the old state.
	overDelete := func(f datalog.Fact) error {
		r := e.rels[f.Pred]
		id := e.rowID(f.Args)
		if !r.derived[id] {
			return nil
		}
		delete(r.derived, id)
		note(f.Pred, id, f.Args)
		if !r.member(id) {
			e.removeRow(r, id)
			delWork = append(delWork, predRow{f.Pred, id, f.Args})
		}
		return nil
	}
	if err := e.pivotLower(u, false, overDelete); err != nil {
		return err
	}
	for len(delWork) > 0 {
		if err := e.budget.Stop(); err != nil {
			return err
		}
		rw := delWork[len(delWork)-1]
		delWork = delWork[:len(delWork)-1]
		if err := e.pivotUnit(u, rw, false, overDelete); err != nil {
			return err
		}
	}

	// Phase 2: re-derive over the surviving facts, to fixpoint.
	for changed := true; changed; {
		changed = false
		if err := e.budget.Stop(); err != nil {
			return err
		}
		for p, m := range overDeleted {
			r := e.rels[p]
			for id, args := range m {
				if r.derived[id] {
					delete(m, id)
					continue
				}
				ok, err := e.rederive(u, p, id, args)
				if err != nil {
					return err
				}
				if ok {
					r.derived[id] = true
					if _, have := r.rows[id]; !have {
						if err := e.addRow(r, id, args); err != nil {
							return err
						}
					}
					delete(m, id)
					changed = true
				}
			}
		}
	}

	// Phase 3: insert, semi-naively over the current state.
	insert := func(f datalog.Fact) error {
		r := e.rels[f.Pred]
		id := e.rowID(f.Args)
		if r.derived[id] {
			return nil
		}
		r.derived[id] = true
		if _, have := r.rows[id]; !have {
			if err := e.addRow(r, id, f.Args); err != nil {
				return err
			}
			insWork = append(insWork, predRow{f.Pred, id, f.Args})
		}
		return nil
	}
	if err := e.pivotLower(u, true, insert); err != nil {
		return err
	}
	for len(insWork) > 0 {
		if err := e.budget.Stop(); err != nil {
			return err
		}
		rw := insWork[len(insWork)-1]
		insWork = insWork[:len(insWork)-1]
		if err := e.pivotUnit(u, rw, true, insert); err != nil {
			return err
		}
	}
	return nil
}

// pivotLower runs every unit rule once per lower-predicate delta row,
// pivoting on the literal it changes. constructive selects which half of a
// delta creates derivations: added positives / removed negatives when true
// (insert phase), removed positives / added negatives when false
// (over-delete phase). Non-pivot literals read the phase's state: old for
// over-delete, current for insert.
func (e *engine) pivotLower(u *unit, constructive bool, emit func(datalog.Fact) error) error {
	view := viewOld
	if constructive {
		view = viewCur
	}
	for _, ri := range u.rules {
		cr := &e.rules[ri]
		for li := range cr.lits {
			lit := cr.lits[li]
			if u.preds[lit.atom.Pred] {
				continue // same-unit changes cascade through the worklist
			}
			d := e.rels[lit.atom.Pred]
			rows := d.deltaRows()
			if len(rows) == 0 {
				continue
			}
			views := make([]viewKind, len(cr.lits))
			for j := range views {
				views[j] = view
			}
			for _, sr := range rows {
				want := +1
				if lit.neg {
					want = -1
				}
				if !constructive {
					want = -want
				}
				if sr.sign != want {
					continue
				}
				if err := e.runRule(cr, li, sr.args, views, emit); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// pivotUnit propagates one same-unit row change through every positive
// occurrence of its predicate in the unit's rules. Negated same-unit
// occurrences cannot exist: the program is stratified.
func (e *engine) pivotUnit(u *unit, rw predRow, constructive bool, emit func(datalog.Fact) error) error {
	view := viewOld
	if constructive {
		view = viewCur
	}
	for _, ri := range u.rules {
		cr := &e.rules[ri]
		for li := range cr.lits {
			lit := cr.lits[li]
			if lit.neg || lit.atom.Pred != rw.pred {
				continue
			}
			views := make([]viewKind, len(cr.lits))
			for j := range views {
				views[j] = view
			}
			if err := e.runRule(cr, li, rw.args, views, emit); err != nil {
				return err
			}
		}
	}
	return nil
}

// rederive reports whether the row is derivable from the current state by
// some unit rule. Head variable and constant arguments are pre-bound to the
// row; computed head arguments are settled by the final row-identity check,
// which also makes the check uniform.
func (e *engine) rederive(u *unit, pred string, id intern.ID, args []value.Value) (bool, error) {
	views := []viewKind{} // extended per rule below
	for _, ri := range u.rules {
		cr := &e.rules[ri]
		if cr.rule.Head.Pred != pred || len(cr.rule.Head.Args) != len(args) {
			continue
		}
		binding := datalog.Binding{}
		feasible := true
		for i, t := range cr.rule.Head.Args {
			switch tt := t.(type) {
			case datalog.Var:
				if v, ok := binding[tt]; ok {
					if v.Compare(args[i]) != 0 {
						feasible = false
					}
				} else {
					binding[tt] = args[i]
				}
			case datalog.Const:
				if tt.V.Compare(args[i]) != 0 {
					feasible = false
				}
			}
			if !feasible {
				break
			}
		}
		if !feasible {
			continue
		}
		views = views[:0]
		for range cr.lits {
			views = append(views, viewCur)
		}
		found := false
		err := e.runRuleBound(cr, binding, views, func(f datalog.Fact) error {
			if e.rowID(f.Args) == id {
				found = true
				return errStop
			}
			return nil
		})
		if err != nil {
			return false, err
		}
		if found {
			return true, nil
		}
	}
	return false, nil
}

// finishBatch collects the batch's membership delta in deterministic order,
// purges removed rows from the indexes, and resets the batch state.
func (e *engine) finishBatch() *ResultDelta {
	d := &ResultDelta{}
	var names []string
	for name, r := range e.rels {
		if len(r.added)+len(r.removed) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		r := e.rels[name]
		pd := PredDelta{Pred: name}
		pd.Added = sortedKeys(name, r.added, r.rows)
		rem := make(map[intern.ID]bool, len(r.removed))
		for id := range r.removed {
			rem[id] = true
		}
		pd.Removed = sortedKeys(name, rem, r.removed)
		d.Preds = append(d.Preds, pd)

		for id, args := range r.removed {
			for pos, m := range r.idx {
				if pos >= len(args) {
					continue
				}
				aid := e.in.Intern(args[pos])
				lst := m[aid]
				for i, rid := range lst {
					if rid == id {
						lst[i] = lst[len(lst)-1]
						lst = lst[:len(lst)-1]
						break
					}
				}
				if len(lst) == 0 {
					delete(m, aid)
				} else {
					m[aid] = lst
				}
			}
		}
		r.added = map[intern.ID]bool{}
		r.removed = map[intern.ID][]value.Value{}
	}
	return d
}

// sortedKeys renders the ids' facts in the outcome's order.
func sortedKeys(pred string, ids map[intern.ID]bool, args map[intern.ID][]value.Value) []string {
	if len(ids) == 0 {
		return nil
	}
	facts := make([]datalog.Fact, 0, len(ids))
	for id := range ids {
		facts = append(facts, datalog.Fact{Pred: pred, Args: args[id]})
	}
	datalog.SortFacts(facts)
	out := make([]string, len(facts))
	for i, f := range facts {
		out[i] = f.Key()
	}
	return out
}

// outcome renders the maintained state exactly as query.Execute renders a
// from-scratch evaluation: every program predicate plus every predicate with
// database facts, sorted, with CompareFacts-ordered fact keys.
func (e *engine) outcome() *query.Outcome {
	out := &query.Outcome{
		Language:    e.plan.Language,
		Semantics:   e.plan.Semantics,
		WellDefined: true,
		IDB:         e.plan.Program.IDB(),
	}
	preds := e.plan.Program.Preds()
	seen := make(map[string]bool, len(preds))
	for _, p := range preds {
		seen[p] = true
	}
	for name, r := range e.rels {
		if !seen[name] && len(r.dbBase) > 0 {
			preds = append(preds, name)
			seen[name] = true
		}
	}
	sort.Strings(preds)
	m := &query.DatalogModel{}
	for _, p := range preds {
		pf := query.PredFacts{Pred: p}
		if r := e.rels[p]; r != nil && len(r.rows) > 0 {
			all := make(map[intern.ID]bool, len(r.rows))
			for id := range r.rows {
				all[id] = true
			}
			pf.True = sortedKeys(p, all, r.rows)
		}
		m.Preds = append(m.Preds, pf)
	}
	out.Datalog = m
	return out
}
