package ivm

import (
	"errors"
	"reflect"
	"testing"

	"algrec/internal/algebra"
	"algrec/internal/datalog"
	"algrec/internal/query"
	"algrec/internal/value"
)

func mustPlan(t *testing.T, sem query.Semantics, src string) *query.Plan {
	t.Helper()
	plan, err := query.Compile(query.LangDatalog, sem, src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return plan
}

func fact(pred string, args ...int64) datalog.Fact {
	vs := make([]value.Value, len(args))
	for i, a := range args {
		vs[i] = value.Int(a)
	}
	return datalog.Fact{Pred: pred, Args: vs}
}

// checkAgainstExecute pins the view's outcome bit-for-bit against a
// from-scratch Execute over the same database.
func checkAgainstExecute(t *testing.T, v *View, plan *query.Plan, db algebra.DB) {
	t.Helper()
	got, err := v.Outcome()
	if err != nil {
		t.Fatalf("Outcome: %v", err)
	}
	want, err := query.Execute(plan, db, query.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("outcome diverged\n got: %+v\nwant: %+v", got, want)
	}
}

// step applies one batch to both the view and the reference database.
func step(t *testing.T, v *View, plan *query.Plan, db algebra.DB, ins, del []datalog.Fact) algebra.DB {
	t.Helper()
	if _, err := v.Apply(ins, del); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	db = ApplyDB(db, ins, del)
	checkAgainstExecute(t, v, plan, db)
	return db
}

func TestIncrementalTCInsertDelete(t *testing.T) {
	plan := mustPlan(t, query.SemStratified, `
		tc(X, Y) :- e(X, Y).
		tc(X, Z) :- tc(X, Y), e(Y, Z).
	`)
	db := algebra.DB{}
	v, err := New(plan, db, query.Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if v.Mode() != ModeIncremental {
		t.Fatalf("Mode = %v, want incremental", v.Mode())
	}
	checkAgainstExecute(t, v, plan, db)

	// Grow a chain, bridge it, then cut it in the middle.
	db = step(t, v, plan, db, []datalog.Fact{fact("e", 1, 2), fact("e", 2, 3)}, nil)
	db = step(t, v, plan, db, []datalog.Fact{fact("e", 3, 4)}, nil)
	db = step(t, v, plan, db, []datalog.Fact{fact("e", 0, 1)}, nil)
	db = step(t, v, plan, db, nil, []datalog.Fact{fact("e", 2, 3)})
	// Alternative path around the cut, then remove it again.
	db = step(t, v, plan, db, []datalog.Fact{fact("e", 2, 4), fact("e", 4, 3)}, nil)
	db = step(t, v, plan, db, nil, []datalog.Fact{fact("e", 2, 4)})
	// Delete and re-insert in one batch: net no-op.
	d, err := v.Apply([]datalog.Fact{fact("e", 0, 1)}, []datalog.Fact{fact("e", 0, 1)})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !d.Empty() {
		t.Fatalf("delete+insert same fact produced delta %+v", d)
	}
	checkAgainstExecute(t, v, plan, db)
}

func TestIncrementalStratifiedNegation(t *testing.T) {
	plan := mustPlan(t, query.SemStratified, `
		r(X) :- n(X), not b(X).
		b(X) :- e(X, Y).
		tc(X, Y) :- e(X, Y).
		tc(X, Z) :- tc(X, Y), e(Y, Z).
		iso(X) :- n(X), not reach(X).
		reach(Y) :- tc(X, Y).
	`)
	db := algebra.DB{}
	v, err := New(plan, db, query.Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if v.Mode() != ModeIncremental {
		t.Fatalf("Mode = %v, want incremental", v.Mode())
	}
	db = step(t, v, plan, db, []datalog.Fact{fact("n", 1), fact("n", 2), fact("n", 3)}, nil)
	db = step(t, v, plan, db, []datalog.Fact{fact("e", 1, 2)}, nil)
	db = step(t, v, plan, db, []datalog.Fact{fact("e", 2, 3)}, nil)
	// Deleting the first edge flips r(1) back on and empties reach via tc.
	db = step(t, v, plan, db, nil, []datalog.Fact{fact("e", 1, 2)})
	db = step(t, v, plan, db, nil, []datalog.Fact{fact("e", 2, 3)})
}

func TestIncrementalBuiltinsAndComparisons(t *testing.T) {
	plan := mustPlan(t, query.SemStratified, `
		p(X) :- d(X), X < 4.
		q(W) :- d(V), W = plus(V, 1), W < 4.
		s(X, Y) :- d(X), d(Y), X < Y.
	`)
	db := algebra.DB{}
	v, err := New(plan, db, query.Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	db = step(t, v, plan, db, []datalog.Fact{fact("d", 1), fact("d", 3), fact("d", 5)}, nil)
	db = step(t, v, plan, db, nil, []datalog.Fact{fact("d", 3)})
	db = step(t, v, plan, db, []datalog.Fact{fact("d", 2)}, []datalog.Fact{fact("d", 1)})
}

func TestIncrementalProgramFactsSurviveDeletion(t *testing.T) {
	// e(1,2) is a program fact: deleting it from the database must not
	// remove it (Execute merges program facts on every evaluation).
	plan := mustPlan(t, query.SemStratified, `
		e(1, 2).
		tc(X, Y) :- e(X, Y).
		tc(X, Z) :- tc(X, Y), e(Y, Z).
	`)
	db := algebra.DB{}
	v, err := New(plan, db, query.Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	db = step(t, v, plan, db, []datalog.Fact{fact("e", 2, 3)}, nil)
	db = step(t, v, plan, db, nil, []datalog.Fact{fact("e", 1, 2)})
	out, err := v.Outcome()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, pf := range out.Datalog.Preds {
		if pf.Pred == "tc" {
			for _, k := range pf.True {
				if k == "tc(1, 3)" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatalf("tc(1, 3) missing after deleting the db copy of a program fact: %+v", out.Datalog)
	}
}

func TestIncrementalNewPredicateFromMutation(t *testing.T) {
	plan := mustPlan(t, query.SemStratified, `p(X) :- d(X).`)
	db := algebra.DB{}
	v, err := New(plan, db, query.Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// z is not mentioned by the program; it must still appear in the
	// outcome while it has facts, and vanish when they are deleted.
	db = step(t, v, plan, db, []datalog.Fact{fact("z", 7, 8), fact("d", 1)}, nil)
	db = step(t, v, plan, db, nil, []datalog.Fact{fact("z", 7, 8)})
}

func TestRecomputeFallbackMatchesIncremental(t *testing.T) {
	src := `
		tc(X, Y) :- e(X, Y).
		tc(X, Z) :- tc(X, Y), e(Y, Z).
		iso(X) :- n(X), not b(X).
		b(X) :- e(X, Y).
	`
	plan := mustPlan(t, query.SemStratified, src)
	db := algebra.DB{}
	inc, err := New(plan, db, query.Options{})
	if err != nil {
		t.Fatalf("New(incremental): %v", err)
	}
	rec, err := New(plan, db, query.Options{Budget: algebra.Budget{NoIVM: true}})
	if err != nil {
		t.Fatalf("New(recompute): %v", err)
	}
	if inc.Mode() != ModeIncremental || rec.Mode() != ModeRecompute {
		t.Fatalf("modes = %v/%v, want incremental/recompute", inc.Mode(), rec.Mode())
	}
	batches := []struct{ ins, del []datalog.Fact }{
		{ins: []datalog.Fact{fact("n", 1), fact("n", 2), fact("e", 1, 2)}},
		{ins: []datalog.Fact{fact("e", 2, 3)}},
		{del: []datalog.Fact{fact("e", 1, 2)}},
		{ins: []datalog.Fact{fact("e", 1, 3)}, del: []datalog.Fact{fact("e", 2, 3)}},
	}
	for bi, b := range batches {
		di, err := inc.Apply(b.ins, b.del)
		if err != nil {
			t.Fatalf("batch %d incremental: %v", bi, err)
		}
		dr, err := rec.Apply(b.ins, b.del)
		if err != nil {
			t.Fatalf("batch %d recompute: %v", bi, err)
		}
		if !reflect.DeepEqual(di, dr) {
			t.Fatalf("batch %d deltas diverged\n inc: %+v\n rec: %+v", bi, di, dr)
		}
		oi, err := inc.Outcome()
		if err != nil {
			t.Fatal(err)
		}
		or, err := rec.Outcome()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(oi, or) {
			t.Fatalf("batch %d outcomes diverged\n inc: %+v\n rec: %+v", bi, oi, or)
		}
	}
}

func TestRecomputeModeForUnsupportedPlans(t *testing.T) {
	// Non-stratified fragments fall back to recompute but stay correct.
	plan, err := query.Compile(query.LangDatalog, query.SemWellFounded, `
		win(X) :- move(X, Y), not win(Y).
	`)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	db := algebra.DB{}
	v, err := New(plan, db, query.Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if v.Mode() != ModeRecompute {
		t.Fatalf("Mode = %v, want recompute for a non-stratified program", v.Mode())
	}
	db = step(t, v, plan, db, []datalog.Fact{fact("move", 1, 2), fact("move", 2, 3)}, nil)
	db = step(t, v, plan, db, []datalog.Fact{fact("move", 3, 1)}, nil)
	db = step(t, v, plan, db, nil, []datalog.Fact{fact("move", 2, 3)})
}

func TestApplyDBMapping(t *testing.T) {
	db := algebra.DB{}
	db = ApplyDB(db, []datalog.Fact{fact("e", 1, 2), fact("d", 7)}, nil)
	if db["e"].Len() != 1 || db["d"].Len() != 1 {
		t.Fatalf("unexpected relations: %+v", db)
	}
	if !db["d"].Has(value.Int(7)) {
		t.Fatalf("unary fact should insert a scalar, got %v", db["d"])
	}
	if !db["e"].Has(value.NewTuple(value.Int(1), value.Int(2))) {
		t.Fatalf("binary fact should insert a pair, got %v", db["e"])
	}
	db2 := ApplyDB(db, nil, []datalog.Fact{fact("e", 1, 2), fact("missing", 0)})
	if db2["e"].Len() != 0 {
		t.Fatalf("deletion failed: %v", db2["e"])
	}
	if db["e"].Len() != 1 {
		t.Fatalf("ApplyDB mutated its input")
	}
}

func TestIncrementalBudgetPoisonsView(t *testing.T) {
	plan := mustPlan(t, query.SemStratified, `
		tc(X, Y) :- e(X, Y).
		tc(X, Z) :- tc(X, Y), e(Y, Z).
	`)
	var opts query.Options
	opts.Ground.MaxRules = 50
	v, err := New(plan, algebra.DB{}, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var ins []datalog.Fact
	for i := int64(0); i < 40; i++ {
		ins = append(ins, fact("e", i, i+1))
	}
	if _, err := v.Apply(ins, nil); err == nil {
		t.Fatal("Apply under a tiny work budget should fail")
	} else if !errors.Is(err, algebra.ErrBudget) {
		t.Fatalf("want a budget error, got %v", err)
	}
	if _, err := v.Outcome(); err == nil {
		t.Fatal("a poisoned view should refuse Outcome")
	}
}

// TestSelfSupportingDerivationDeleted is the regression pinned by the
// dlog-ivm fuzz corpus: deleting a base fact that a recursive rule re-derives
// from itself must remove the fact — DRed has to over-delete the suspect
// derivation and fail rederivation, not let the self-support keep it alive.
func TestSelfSupportingDerivationDeleted(t *testing.T) {
	plan := mustPlan(t, query.SemStratified, `p(X) :- p(X).`)
	db := algebra.DB{}
	v, err := New(plan, db, query.Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if v.Mode() != ModeIncremental {
		t.Fatalf("Mode = %v, want incremental", v.Mode())
	}
	db = step(t, v, plan, db, []datalog.Fact{fact("p", 0)}, nil)
	db = step(t, v, plan, db, nil, []datalog.Fact{fact("p", 0)})
	d, err := v.Apply(nil, []datalog.Fact{fact("p", 0)})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !d.Empty() {
		t.Fatalf("deleting an absent fact produced delta %+v", d)
	}
}

// TestVanishedPredicateDeltaOrder pins the recompute fallback's delta
// ordering: a predicate that disappears from the outcome entirely (its only
// base fact deleted, no rule mentions it) must appear in name order among
// the other deltas, exactly as the incremental engine emits it.
func TestVanishedPredicateDeltaOrder(t *testing.T) {
	plan := mustPlan(t, query.SemStratified, `s(X, X) :- q(X).`)
	v, err := New(plan, algebra.DB{}, query.Options{Budget: algebra.Budget{NoIVM: true}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if v.Mode() != ModeRecompute {
		t.Fatalf("Mode = %v, want recompute", v.Mode())
	}
	if _, err := v.Apply([]datalog.Fact{fact("p", 0)}, nil); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	d, err := v.Apply([]datalog.Fact{fact("q", 1)}, []datalog.Fact{fact("p", 0)})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	var order []string
	for _, pd := range d.Preds {
		order = append(order, pd.Pred)
	}
	if !reflect.DeepEqual(order, []string{"p", "q", "s"}) {
		t.Fatalf("delta preds out of name order: %v", order)
	}
}
