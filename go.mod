module algrec

go 1.22
