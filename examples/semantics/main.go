// A tour of the semantics the paper discusses, all on the same program: the
// WIN game over a MOVE relation with a cycle and an escape. The program is
// not stratified, so the stratified semantics rejects it; the minimal-model
// semantics rejects any negation; and the three declarative proposals —
// inflationary, well-founded/valid, stable — disagree exactly where the
// theory says they should.
//
// Run with:
//
//	go run ./examples/semantics
package main

import (
	"errors"
	"fmt"
	"log"

	"algrec"
	"algrec/internal/datalog/ground"
	"algrec/internal/semantics"
)

const src = `
% an unresolved cycle a <-> b, plus a decided region: c -> d (d has no
% moves, so d is lost and c is won)
move(a, b). move(b, a). move(c, d).
win(X) :- move(X, Y), not win(Y).
`

func main() {
	prog, err := algrec.ParseDatalog(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(src)
	fmt.Println("stratified? ", algrec.IsStratified(prog), " (recursion through negation)")
	if _, err := algrec.EvalDatalog(prog, algrec.SemStratified); err != nil {
		fmt.Println("stratified semantics:", err)
	}
	if _, err := algrec.EvalDatalog(prog, algrec.SemMinimal); err != nil {
		var target error = semantics.ErrNotPositive
		if errors.Is(err, target) {
			fmt.Println("minimal-model semantics:", err)
		}
	}
	fmt.Println()

	for _, sem := range []algrec.Semantics{algrec.SemInflationary, algrec.SemWellFounded, algrec.SemValid} {
		in, err := algrec.EvalDatalog(prog, sem)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s win true = %v", sem, in.TrueFacts("win"))
		if u := in.UndefFacts("win"); len(u) > 0 {
			fmt.Printf("   undefined = %v", u)
		}
		fmt.Println()
	}

	// Stable models: the a<->b cycle branches into two models. Note win(c)
	// is true and win(d) false in EVERY stable model — the well-founded
	// model is the skeptical core of the stable models.
	g, err := ground.Ground(prog, ground.Budget{})
	if err != nil {
		log.Fatal(err)
	}
	models, err := semantics.NewEngine(g).StableModels(16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stable        %d models:\n", len(models))
	for i, m := range models {
		fmt.Printf("              model %d: win = %v\n", i+1, m.TrueFacts("win"))
	}

	// The same program as algebra=, under its stable reading (the paper's
	// concluding remark: the results adjust to other semantics).
	script, err := algrec.ParseScript(`
rel move = {(a, b), (b, a), (c, d)};
def win = map(diff(move, product(map(move, \x -> x.1), win)), \x -> x.1);
`)
	if err != nil {
		log.Fatal(err)
	}
	sets, err := algrec.StableSets(script.Program, script.DB, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nalgebra= under the stable reading:")
	for i, m := range sets {
		fmt.Printf("              model %d: WIN = %v\n", i+1, m["win"])
	}
}
