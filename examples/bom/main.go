// Bill of materials: which parts does an assembly (transitively) contain,
// and which catalogued parts does it NOT contain? The "not contains" query
// needs negation over a recursively defined relation — a *stratified*
// program, the class the paper's Theorem 4.3 proves equivalent to the
// positive IFP-algebra.
//
// The example evaluates the deductive program under the stratified
// semantics, translates it mechanically to a positive IFP-algebra program
// (algrec.ToPositiveIFP), evaluates that, and shows the two agree.
//
// Run with:
//
//	go run ./examples/bom
package main

import (
	"fmt"
	"log"

	"algrec"
)

func main() {
	prog, err := algrec.ParseDatalog(`
% direct containment: assembly -> part
sub(bike, frame).  sub(bike, wheel).
sub(wheel, rim).   sub(wheel, spoke).  sub(wheel, hub).
sub(hub, axle).    sub(hub, bearing).
sub(lamp, bulb).   sub(lamp, battery).

part(bike). part(frame). part(wheel). part(rim). part(spoke).
part(hub). part(axle). part(bearing). part(lamp). part(bulb). part(battery).

contains(X, Y) :- sub(X, Y).
contains(X, Z) :- contains(X, Y), sub(Y, Z).
missing(Y) :- part(Y), not contains(bike, Y), Y != bike.
`)
	if err != nil {
		log.Fatal(err)
	}
	if !algrec.IsStratified(prog) {
		log.Fatal("expected a stratified program")
	}
	if err := algrec.CheckSafe(prog); err != nil {
		log.Fatal(err)
	}

	in, err := algrec.EvalDatalog(prog, algrec.SemStratified)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bike contains:")
	for _, f := range in.TrueFacts("contains") {
		if f.Args[0].String() == "bike" {
			fmt.Println("  ", f.Args[1])
		}
	}
	fmt.Println("catalogued parts the bike does not contain:")
	for _, f := range in.TrueFacts("missing") {
		fmt.Println("  ", f.Args[0])
	}

	// Theorem 4.3: the same query as a positive IFP-algebra program.
	cp, db, err := algrec.ToPositiveIFP(prog)
	if err != nil {
		log.Fatal(err)
	}
	res, err := algrec.EvalValid(cp, db, algrec.Budget{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npositive IFP-algebra translation says missing =", res.Set("missing"))
	fmt.Println("translation is well defined (two-valued):", res.WellDefined())
}
