// The WIN game of the paper's Example 3, the example that motivated the
// well-founded and stable semantics: one wins if the opponent has no moves.
//
// This example contrasts an acyclic and a cyclic MOVE relation:
//   - acyclic: the valid interpretation is two-valued, an initial valid
//     model exists, and every semantics agrees;
//   - cyclic: positions on the cycle have *undefined* status under the
//     valid/well-founded semantics, there is no initial valid model, and
//     the stable semantics turns the cycle into multiple models.
//
// Run with:
//
//	go run ./examples/wingame
package main

import (
	"fmt"
	"log"

	"algrec"
	"algrec/internal/datalog/ground"
	"algrec/internal/semantics"
)

func main() {
	show("acyclic MOVE (a→b, b→c, b→d)", `
rel move = {(a, b), (b, c), (b, d)};
def win = map(diff(move, product(map(move, \x -> x.1), win)), \x -> x.1);
`, `
move(a, b). move(b, c). move(b, d).
win(X) :- move(X, Y), not win(Y).
`)

	show("cyclic MOVE (a→a, a→b, b→c)", `
rel move = {(a, a), (a, b), (b, c)};
def win = map(diff(move, product(map(move, \x -> x.1), win)), \x -> x.1);
`, `
move(a, a). move(a, b). move(b, c).
win(X) :- move(X, Y), not win(Y).
`)

	// A pure 2-cycle: win(a) and win(b) are both undefined under the valid
	// semantics, and the stable semantics has two models (a wins or b wins).
	fmt.Println("== pure 2-cycle (a↔b): the stable semantics branches")
	prog, err := algrec.ParseDatalog(`
move(a, b). move(b, a).
win(X) :- move(X, Y), not win(Y).
`)
	if err != nil {
		log.Fatal(err)
	}
	g, err := ground.Ground(prog, ground.Budget{})
	if err != nil {
		log.Fatal(err)
	}
	models, err := semantics.NewEngine(g).StableModels(16)
	if err != nil {
		log.Fatal(err)
	}
	for i, m := range models {
		fmt.Printf("  stable model %d: win = %v\n", i+1, m.TrueFacts("win"))
	}
}

func show(title, algSrc, dlogSrc string) {
	fmt.Println("==", title)
	script, err := algrec.ParseScript(algSrc)
	if err != nil {
		log.Fatal(err)
	}
	res, err := algrec.EvalScript(script)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  algebra=:   WIN = %v", res.Set("win"))
	if u := res.UndefElems("win"); !u.IsEmpty() {
		fmt.Printf("   undefined: %v", u)
	}
	fmt.Printf("   well defined: %v\n", res.WellDefined())

	prog, err := algrec.ParseDatalog(dlogSrc)
	if err != nil {
		log.Fatal(err)
	}
	in, err := algrec.EvalDatalog(prog, algrec.SemValid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  deduction:  win true = %v   undefined = %v\n\n",
		in.TrueFacts("win"), in.UndefFacts("win"))
}
