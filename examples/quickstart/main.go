// Quickstart: define a database and a recursive algebra= query, evaluate it
// under the valid semantics, and cross-check against the deductive side.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"algrec"
)

func main() {
	// An algebra= script: a database relation and one recursive definition.
	// The definition is the paper's Example 3 WIN query:
	//   WIN = π1(MOVE − ((π1 MOVE) × WIN))
	script, err := algrec.ParseScript(`
rel move = {(a, b), (b, c), (b, d)};
def win = map(diff(move, product(map(move, \x -> x.1), win)), \x -> x.1);
query win;
`)
	if err != nil {
		log.Fatal(err)
	}

	res, err := algrec.EvalScript(script)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("WIN =", res.Set("win")) // {b}: b moves to c (or d), which are lost
	fmt.Println("well defined:", res.WellDefined())

	// Membership is three-valued in general; here it is total.
	fmt.Println("MEM(b, WIN) =", res.Member("win", algrec.Sym("b")))
	fmt.Println("MEM(a, WIN) =", res.Member("win", algrec.Sym("a")))

	// The same query in the deductive paradigm, evaluated under the same
	// (valid) semantics — Theorem 6.2 says the two paradigms agree.
	prog, err := algrec.ParseDatalog(`
move(a, b). move(b, c). move(b, d).
win(X) :- move(X, Y), not win(Y).
`)
	if err != nil {
		log.Fatal(err)
	}
	in, err := algrec.EvalDatalog(prog, algrec.SemValid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("deduction says: ")
	for _, f := range in.TrueFacts("win") {
		fmt.Print(f, " ")
	}
	fmt.Println()

	// And the mechanical translation between them (Proposition 6.1).
	cp, db, err := algrec.ToAlgebra(prog)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := algrec.EvalValid(cp, db, algrec.Budget{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("translated algebra= says: WIN =", res2.Set("win"))
}
