// Complex objects: the paper's setting is object-oriented databases, where
// attribute values can be arbitrary data — including sets. This example runs
// an algebra= program over a nested relation: documents are pairs
// (id, {keywords}), i.e. tuples with a set-valued component.
//
// Queries demonstrate element-level set operations (the `in` membership
// test of the element language) combined with recursion: a document is
// "relevant" if it mentions `logic`, or cites a relevant document.
//
// Run with:
//
//	go run ./examples/nested
package main

import (
	"fmt"
	"log"

	"algrec"
)

func main() {
	script, err := algrec.ParseScript(`
% docs: (id, keyword-set)
rel docs = {
	(d1, {logic, databases}),
	(d2, {algebra, recursion}),
	(d3, {cooking}),
	(d4, {fixpoints})
};
% cites: (citing, cited)
rel cites = {(d2, d1), (d4, d2), (d3, d3)};

% documents mentioning the keyword 'logic' (element-level set membership)
def mentions_logic = map(select(docs, \d -> logic in d.2), \d -> d.1);

% relevant = mentions logic, or cites a relevant document (recursion)
def relevant = union(mentions_logic,
	map(select(product(cites, relevant), \p -> p.1.2 = p.2), \p -> p.1.1));

% documents that are NOT relevant (negation over the recursive set)
def boring = diff(map(docs, \d -> d.1), relevant);

query relevant;
query boring;
`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := algrec.EvalScript(script)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mentions 'logic':", res.Set("mentions_logic"))
	fmt.Println("relevant (transitively citing):", res.Set("relevant"))
	fmt.Println("boring:", res.Set("boring"))
	fmt.Println("well defined:", res.WellDefined())

	// Nested values flow through the deductive side too (Theorem 6.2): the
	// translation carries the set-valued components along unchanged.
	prog, err := algrec.ToDeduction(script.Program)
	if err != nil {
		log.Fatal(err)
	}
	for name, s := range script.DB {
		for _, e := range s.Elems() {
			f := algrec.Fact{Pred: name, Args: []algrec.Value{e}}
			prog.AddFacts(f)
		}
	}
	in, err := algrec.EvalDatalog(prog, algrec.SemValid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("deduction agrees on relevant: ")
	for _, f := range in.TrueFacts("relevant") {
		fmt.Print(f.Args[0], " ")
	}
	fmt.Println()
}
