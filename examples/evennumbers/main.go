// The even-numbers set of the paper's Examples 1 and 3: the recursive
// equation S^e = {0} ∪ MAP_{+2}(S^e) defines the (infinite) set of even
// naturals. On a bounded prefix of the naturals the valid interpretation is
// two-valued: MEM answers TRUE for every even number and FALSE for every
// odd one — the totality that required negation (the MEM(x,y) ≠ T → MEM(x,y)
// = F equation) in the specification framework of Section 2.2.
//
// Without the bound the fixed point is infinite and evaluation stops with a
// budget error rather than diverging — the executable face of the paper's
// observation that membership is not recursively computable in general.
//
// Run with:
//
//	go run ./examples/evennumbers
package main

import (
	"errors"
	"fmt"
	"log"

	"algrec"
	"algrec/internal/algebra"
	"algrec/internal/core"
)

func main() {
	script, err := algrec.ParseScript(`
def evens = select(union({0}, map(evens, \x -> x + 2)), \x -> x < 40);
`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := algrec.EvalScript(script)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("S^e below 40:", res.Set("evens"))
	fmt.Println("well defined:", res.WellDefined())
	for _, n := range []int64{0, 7, 12, 39} {
		fmt.Printf("MEM(%d, S^e) = %v\n", n, res.Member("evens", algrec.Int(n)))
	}

	// The unbounded equation: the fixed point is the infinite set of evens.
	// The evaluator detects the divergence via its budget.
	unbounded, err := algrec.ParseScript(`
def evens = union({0}, map(evens, \x -> x + 2));
`)
	if err != nil {
		log.Fatal(err)
	}
	_, err = core.EvalValid(unbounded.Program, unbounded.DB,
		algrec.Budget{MaxIFPIters: 1000, MaxSetSize: 1000})
	if errors.Is(err, algebra.ErrBudget) {
		fmt.Println("\nunbounded S^e:", err)
	} else {
		log.Fatalf("expected a budget error, got %v", err)
	}

	// Proposition 3.4 in action: the equation's body is monotone (no
	// subtraction of the defined set), so the recursive equation and the
	// IFP operator applied to the same body coincide.
	ifpExpr, err := algrec.ParseExpr(`ifp(s, select(union({0}, map(s, \x -> x + 2)), \x -> x < 40))`)
	if err != nil {
		log.Fatal(err)
	}
	viaIFP, err := algrec.EvalExpr(ifpExpr, algrec.DB{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nIFP operator gives the same set:", viaIFP.Compare(res.Set("evens")) == 0)
}
