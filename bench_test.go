// Benchmarks: one testing.B target per experiment in DESIGN.md's
// per-experiment index (E1–E11, P1–P10, ablations A1–A4), plus
// micro-benchmarks of the individual engines. The experiment functions themselves verify agreement
// (they are also run as tests in internal/expt); here they are measured.
package algrec_test

import (
	"testing"

	"algrec"
	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/datalog/ground"
	"algrec/internal/expt"
	"algrec/internal/obsv"
	"algrec/internal/rewrite"
	"algrec/internal/semantics"
	"algrec/internal/spec"
	"algrec/internal/spec/validspec"
	"algrec/internal/term"
	"algrec/internal/translate"
)

func runSuite(b *testing.B, run func() (*expt.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if !tbl.OK {
			b.Fatalf("experiment failed:\n%s", tbl)
		}
	}
}

func BenchmarkE1SetSpec(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunE1([]int{8, 16}) })
}

func BenchmarkE2EvenSet(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunE2([]int64{256, 1024}) })
}

func BenchmarkE3SpecDecide(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunE3([]int{5, 7}) })
}

func BenchmarkE4IFPWellDefined(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunE4([]int{16, 32}) })
}

func BenchmarkE5MonotoneFixpoint(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunE5([]int{16, 32}) })
}

func BenchmarkE6Stratified(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunE6([]int{16, 64}) })
}

func BenchmarkE7IFPToDatalog(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunE7([]int{8, 16}) })
}

func BenchmarkE8StepIndex(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunE8([]int{4, 8}) })
}

func BenchmarkE9DeductionAlgebra(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunE9([]int{8, 16}) })
}

func BenchmarkE10Semantics(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunE10([]int{6, 8}) })
}

func BenchmarkP1SemiNaive(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunP1([]int{64, 128}) })
}

func BenchmarkP2DirectVsTranslate(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunP2([]int{16, 32}) })
}

func BenchmarkP3Stable(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunP3([]int{4, 8}) })
}

func BenchmarkE11IFPElimination(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunE11([]int{3, 5}) })
}

func BenchmarkP4BitsetKernel(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunP4([]int{2048}) })
}

func BenchmarkP5ParallelStable(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunP5([]int{8, 10}) })
}

func BenchmarkA1FlipAblation(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunA1([]int{60}) })
}

func BenchmarkA2ValidVsWFS(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunA2([]int{16, 32}) })
}

func BenchmarkA3HashJoin(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunA3([]int{24}) })
}

// BenchmarkP6DeltaIFP runs P6 at its largest default size; the acceptance
// bar for the delta engine is the semi-naive column beating the naive one by
// >= 5x on the chain workload here.
func BenchmarkP6DeltaIFP(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunP6([]int{96}) })
}

func BenchmarkA4SemiNaiveAblation(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunA4([]int{24}) })
}

// BenchmarkP7PlanCache runs the server-mode benchmark at one size; the
// acceptance bar for the serving layer is the cached column beating the
// cold-compile one by >= 5x on the inline-literal closure workload.
func BenchmarkP7PlanCache(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunP7([]int{1500}) })
}

// BenchmarkP8Interning runs the interning A/B at one size; the acceptance
// bar for the hash-consed representation is the intern column beating the
// -nointern baseline by >= 2x on the Datalog chain-closure workload.
func BenchmarkP8Interning(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunP8([]int{256}) })
}

// BenchmarkP9Streaming runs the streaming-runtime A/B at one size; the
// acceptance bar for the pipeline runtime is the streaming column beating
// the -nostreaming baseline by >= 1.5x on the product-select workload.
func BenchmarkP9Streaming(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunP9([]int{256}) })
}

// BenchmarkP10IDSets runs the ID-native kernel A/B at one size; the
// acceptance bar for the kernels is the idsets column beating the -noidsets
// baseline by >= 2x on the IFP chain-closure workload (gated in CI by
// tools/benchcheck -gates).
func BenchmarkP10IDSets(b *testing.B) {
	runSuite(b, func() (*expt.Table, error) { return expt.RunP10([]int{256}) })
}

// Micro-benchmarks of the individual engines.

func BenchmarkGroundTC(b *testing.B) {
	p := expt.TCProgram(expt.ChainEdges("e", 128))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ground.Ground(p, ground.Budget{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinimalSemiNaive(b *testing.B) {
	g, err := ground.Ground(expt.TCProgram(expt.ChainEdges("e", 128)), ground.Budget{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := semantics.NewEngine(g).Minimal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWellFoundedWinCycle(b *testing.B) {
	g, err := ground.Ground(expt.WinProgram(expt.CycleEdges("move", 64)), ground.Budget{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		semantics.NewEngine(g).WellFounded()
	}
}

func BenchmarkValidWinCycle(b *testing.B) {
	g, err := ground.Ground(expt.WinProgram(expt.CycleEdges("move", 64)), ground.Budget{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		semantics.NewEngine(g).Valid()
	}
}

func BenchmarkAlgebraTCIFP(b *testing.B) {
	db := expt.FactsDB("e", expt.ChainEdges("e", 48))
	e := expt.TCIFPExpr("e")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := algebra.Eval(e, db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreWinDirect(b *testing.B) {
	db := expt.FactsDB("move", expt.CycleEdges("move", 48))
	p := expt.WinCoreProgram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.EvalValid(p, db, algebra.Budget{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTranslateDatalogToCore(b *testing.B) {
	p := expt.WinProgram(expt.CycleEdges("move", 48))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := translate.DatalogToCore(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStableTwoCycles(b *testing.B) {
	g, err := ground.Ground(expt.WinProgram(expt.CycleEdges("move", 8)), ground.Budget{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := semantics.NewEngine(g).StableModels(20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRewriteSetNormalize(b *testing.B) {
	sp, err := spec.SetSpec(spec.NatSpec(), "nat", "EQ")
	if err != nil {
		b.Fatal(err)
	}
	elems := make([]term.Term, 12)
	for i := range elems {
		elems[i] = spec.NatTerm((i * 7) % 13)
	}
	t := spec.SetTerm(elems...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rewrite.New(sp, 0).Normalize(t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpecInitialValidModel(b *testing.B) {
	cs := &validspec.ConstSpec{
		Consts: []string{"a", "b", "c", "d", "e", "f"},
		Clauses: []validspec.Clause{
			{Conds: []validspec.Lit{{A: "a", B: "b", Negated: true}}, A: "a", B: "c"},
			{Conds: []validspec.Lit{{A: "c", B: "d"}}, A: "e", B: "f"},
			{A: "c", B: "d"},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := cs.InitialValidModel(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseScript(b *testing.B) {
	src := `
rel move = {(a, b), (b, c), (b, d)};
def win = map(diff(move, product(map(move, \x -> x.1), win)), \x -> x.1);
query win;
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := algrec.ParseScript(src); err != nil {
			b.Fatal(err)
		}
	}
}

// benchP4Workloads builds the P4 workload pair — the semi-naive minimal
// model of a transitive-closure chain and the alternating-fixpoint
// well-founded model of a win chain — warmed so the engines' scratch
// buffers are allocated, and runs them under b.Run sub-benchmarks. It is
// shared by the collector-overhead benchmarks: the disabled-collector run
// must stay within noise of the bare kernel (the observability layer's
// zero-overhead contract), which the enabled-collector run quantifies
// against.
func benchP4Workloads(b *testing.B, prep func(e *semantics.Engine)) {
	b.Helper()
	budget := ground.Budget{MaxAtoms: 8_000_000, MaxRules: 16_000_000}
	gTC, err := ground.Ground(expt.TCProgram(expt.ChainEdges("e", 1024)), budget)
	if err != nil {
		b.Fatal(err)
	}
	gWin, err := ground.Ground(expt.WinProgram(expt.ChainEdges("move", 1024)), budget)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("tcChainMinimal", func(b *testing.B) {
		e := semantics.NewEngine(gTC)
		if prep != nil {
			prep(e)
		}
		if _, err := e.Minimal(); err != nil { // warm scratch
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Minimal(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("winChainWFS", func(b *testing.B) {
		e := semantics.NewEngine(gWin)
		if prep != nil {
			prep(e)
		}
		e.WellFounded() // warm scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.WellFounded()
		}
	})
}

// BenchmarkP4CollectorOff is the P4 workload with the observability layer
// disabled (no collector attached) — the default state every other
// benchmark and production path runs in. Its numbers must match the
// pre-instrumentation kernel within noise (~2%).
func BenchmarkP4CollectorOff(b *testing.B) {
	benchP4Workloads(b, nil)
}

// BenchmarkP4CollectorOn is the same workload with a counter-folding Stats
// collector attached, quantifying the cost of enabled observability: one
// event build and map fold per fixpoint call, nothing per pass or per atom.
func BenchmarkP4CollectorOn(b *testing.B) {
	benchP4Workloads(b, func(e *semantics.Engine) {
		e.SetCollector(obsv.NewStats())
	})
}
