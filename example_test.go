package algrec_test

import (
	"fmt"

	"algrec"
)

// The paper's Example 3: the WIN game as a recursive algebra= definition,
// evaluated under the valid semantics.
func ExampleEvalScript() {
	script, err := algrec.ParseScript(`
rel move = {(a, b), (b, c), (b, d)};
def win = map(diff(move, product(map(move, \x -> x.1), win)), \x -> x.1);
`)
	if err != nil {
		panic(err)
	}
	res, err := algrec.EvalScript(script)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Set("win"))
	fmt.Println(res.WellDefined())
	// Output:
	// {b}
	// true
}

// Membership is three-valued: on a cyclic MOVE relation a position's status
// can be undefined — the paper's "no initial valid model" case.
func ExampleResult_Member() {
	script, _ := algrec.ParseScript(`
rel move = {(a, a)};
def win = map(diff(move, product(map(move, \x -> x.1), win)), \x -> x.1);
`)
	res, _ := algrec.EvalScript(script)
	fmt.Println(res.Member("win", algrec.Sym("a")))
	fmt.Println(res.WellDefined())
	// Output:
	// undef
	// false
}

// The same query in the deductive paradigm, under the same semantics.
func ExampleEvalDatalog() {
	prog, _ := algrec.ParseDatalog(`
move(a, b). move(b, c). move(b, d).
win(X) :- move(X, Y), not win(Y).
`)
	in, _ := algrec.EvalDatalog(prog, algrec.SemValid)
	for _, f := range in.TrueFacts("win") {
		fmt.Println(f)
	}
	// Output:
	// win(b)
}

// Proposition 6.1: a safe deductive program translates mechanically to an
// equivalent algebra= program.
func ExampleToAlgebra() {
	prog, _ := algrec.ParseDatalog(`
e(1, 2). e(2, 3).
tc(X, Y) :- e(X, Y).
tc(X, Z) :- tc(X, Y), e(Y, Z).
`)
	cp, db, err := algrec.ToAlgebra(prog)
	if err != nil {
		panic(err)
	}
	res, _ := algrec.EvalValid(cp, db, algrec.Budget{})
	fmt.Println(res.Set("tc"))
	// Output:
	// {(1, 2), (1, 3), (2, 3)}
}

// The even-numbers set of Examples 1 and 3, on a bounded prefix.
func ExampleParseExpr() {
	e, _ := algrec.ParseExpr(`ifp(s, select(union({0}, map(s, \x -> x + 2)), \x -> x < 10))`)
	evens, _ := algrec.EvalExpr(e, algrec.DB{})
	fmt.Println(evens)
	// Output:
	// {0, 2, 4, 6, 8}
}

// The stable-model reading of an algebra= program branches on cycles.
func ExampleStableSets() {
	script, _ := algrec.ParseScript(`
rel move = {(a, b), (b, a)};
def win = map(diff(move, product(map(move, \x -> x.1), win)), \x -> x.1);
`)
	models, _ := algrec.StableSets(script.Program, script.DB, 16)
	for _, m := range models {
		fmt.Println(m["win"])
	}
	// Output:
	// {a}
	// {b}
}
