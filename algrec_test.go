package algrec_test

import (
	"testing"

	"algrec"
)

// TestFacadeWinGame drives the complete public API surface on the paper's
// Example 3, the same flow as examples/quickstart.
func TestFacadeWinGame(t *testing.T) {
	script, err := algrec.ParseScript(`
rel move = {(a, b), (b, c), (b, d)};
def win = map(diff(move, product(map(move, \x -> x.1), win)), \x -> x.1);
query win;
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := algrec.EvalScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if !res.WellDefined() {
		t.Error("acyclic game should be well defined")
	}
	if got := res.Set("win"); got.String() != "{b}" {
		t.Errorf("win = %v", got)
	}
	if res.Member("win", algrec.Sym("b")).String() != "true" {
		t.Error("MEM(b, win) should be true")
	}
	if res.Member("win", algrec.Sym("a")).String() != "false" {
		t.Error("MEM(a, win) should be false")
	}
}

func TestFacadeDatalogAndTranslations(t *testing.T) {
	prog, err := algrec.ParseDatalog(`
move(a, a). move(a, b).
win(X) :- move(X, Y), not win(Y).
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := algrec.CheckSafe(prog); err != nil {
		t.Fatal(err)
	}
	if algrec.IsStratified(prog) {
		t.Error("win game is not stratified")
	}
	in, err := algrec.EvalDatalog(prog, algrec.SemValid)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(in.TrueFacts("win")); got != 1 {
		t.Errorf("|win| = %d, want 1", got)
	}

	cp, db, err := algrec.ToAlgebra(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := algrec.EvalValid(cp, db, algrec.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Set("win"); got.String() != "{a}" {
		t.Errorf("translated win = %v", got)
	}
	back, err := algrec.ToDeduction(cp)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rules) == 0 {
		t.Error("round-trip produced empty program")
	}

	// Step-index transform: inflationary result in valid clothing.
	si := algrec.StepIndex(prog, 8)
	in2, err := algrec.EvalDatalog(si, algrec.SemValid)
	if err != nil {
		t.Fatal(err)
	}
	if in2.CountUndef() != 0 {
		t.Error("step-indexed program should be two-valued")
	}

	// Stratified translation rejects the win game.
	if _, _, err := algrec.ToPositiveIFP(prog); err == nil {
		t.Error("ToPositiveIFP should reject a non-stratified program")
	}
}

func TestFacadeValues(t *testing.T) {
	s := algrec.NewSet(algrec.Int(2), algrec.Int(1), algrec.Int(2))
	if s.Len() != 2 {
		t.Errorf("set = %v", s)
	}
	tp := algrec.NewTuple(algrec.Sym("a"), algrec.Int(1))
	if tp.String() != "(a, 1)" {
		t.Errorf("tuple = %v", tp)
	}
	if !algrec.EmptySet.IsEmpty() {
		t.Error("EmptySet not empty")
	}
	e, err := algrec.ParseExpr(`union({1}, {2})`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := algrec.EvalExpr(e, algrec.DB{})
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "{1, 2}" {
		t.Errorf("EvalExpr = %v", got)
	}
}
