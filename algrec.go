// Package algrec is a reproduction of Beeri & Milo, "On the Power of
// Algebras with Recursion" (SIGMOD 1993): the algebra and IFP-algebra over
// complex objects, their extension with general recursive definitions
// (algebra= / IFP-algebra=), a deductive language with negation, the
// valid / well-founded / stable / inflationary / stratified semantics, and
// the paper's constructive translations between the two paradigms.
//
// This root package is the public facade: it re-exports the types a user
// needs and wraps the common entry points. The implementation lives in the
// internal packages:
//
//	internal/value      complex-object values (atoms, tuples, finite sets)
//	internal/algebra    the algebra and IFP-algebra operators and evaluator
//	internal/core       algebra= programs and their valid-model semantics
//	internal/datalog    the deductive language: AST, parser, safety, strata
//	internal/semantics  minimal/stratified/inflationary/WFS/valid/stable
//	internal/translate  the Section 5 and Section 6 translations
//	internal/spec       algebraic specifications (SET(nat), Example 2, ...)
//	internal/expt       the experiment suite behind EXPERIMENTS.md
//
// # Quick start
//
//	script, err := algrec.ParseScript(`
//	    rel move = {(a, b), (b, c), (b, d)};
//	    def win = map(diff(move, product(map(move, \x -> x.1), win)), \x -> x.1);
//	`)
//	res, err := algrec.EvalScript(script)
//	fmt.Println(res.Set("win")) // {b}
//
// See the examples/ directory for complete programs.
package algrec

import (
	"algrec/internal/algebra"
	"algrec/internal/algebra/parse"
	"algrec/internal/core"
	"algrec/internal/datalog"
	"algrec/internal/datalog/ground"
	"algrec/internal/semantics"
	"algrec/internal/translate"
	"algrec/internal/value"
)

// Core value model.
type (
	// Value is a complex-object value: bool, int, string/symbol, tuple, or
	// finite set.
	Value = value.Value
	// Set is a canonical finite set of values.
	Set = value.Set
	// Tuple is an ordered sequence of values.
	Tuple = value.Tuple
)

// Value constructors, re-exported for convenience.
var (
	NewSet   = value.NewSet
	NewTuple = value.NewTuple
	EmptySet = value.EmptySet
)

// Int returns an integer value.
func Int(i int64) Value { return value.Int(i) }

// Sym returns a symbol (string) value.
func Sym(s string) Value { return value.String(s) }

// Algebra layer.
type (
	// DB is a database: named finite sets.
	DB = algebra.DB
	// Expr is a set-valued algebra expression.
	Expr = algebra.Expr
	// Budget caps fixpoint iteration and set sizes during evaluation.
	Budget = algebra.Budget
	// Program is an algebra= program: a list of defining equations.
	Program = core.Program
	// Def is one defining equation of an algebra= program.
	Def = core.Def
	// Result is the valid interpretation of an algebra= program: lower and
	// upper bounds for every defined set.
	Result = core.Result
	// Script is a parsed algebra= script: database, program and queries.
	Script = parse.Script
)

// ParseScript parses an algebra= script (see internal/algebra/parse for the
// grammar): `rel name = {...};` statements populate the database, `def`
// statements the program, `query` statements the query list.
func ParseScript(src string) (*Script, error) { return parse.ParseScript(src) }

// ParseExpr parses a single algebra expression.
func ParseExpr(src string) (Expr, error) { return parse.ParseExpr(src) }

// EvalScript evaluates the script's program on its database under the valid
// semantics with the default budget.
func EvalScript(s *Script) (*Result, error) {
	return core.EvalValid(s.Program, s.DB, algebra.Budget{})
}

// EvalValid evaluates an algebra= program on a database under the valid
// semantics: the Section 2.2 alternating computation lifted to sets.
func EvalValid(p *Program, db DB, budget Budget) (*Result, error) {
	return core.EvalValid(p, db, budget)
}

// EvalExpr evaluates a non-recursive algebra / IFP-algebra expression
// against a database with the default budget.
func EvalExpr(e Expr, db DB) (Set, error) { return algebra.Eval(e, db) }

// Deductive layer.
type (
	// DatalogProgram is a deductive program: rules and facts.
	DatalogProgram = datalog.Program
	// Interp is a three-valued interpretation (true/false/undefined atoms).
	Interp = semantics.Interp
	// Semantics selects an evaluation semantics.
	Semantics = semantics.Semantics
	// Fact is a ground atom.
	Fact = datalog.Fact
)

// The available semantics for EvalDatalog.
const (
	SemMinimal      = semantics.SemMinimal
	SemStratified   = semantics.SemStratified
	SemInflationary = semantics.SemInflationary
	SemWellFounded  = semantics.SemWellFounded
	SemValid        = semantics.SemValid
)

// ParseDatalog parses a deductive program:
//
//	win(X) :- move(X, Y), not win(Y).
func ParseDatalog(src string) (*DatalogProgram, error) { return datalog.ParseProgram(src) }

// EvalDatalog grounds and evaluates a deductive program under the chosen
// semantics with default budgets.
func EvalDatalog(p *DatalogProgram, sem Semantics) (*Interp, error) {
	return semantics.Eval(p, sem, ground.Budget{})
}

// CheckSafe reports whether every rule is safe per Definition 4.1 (range
// formulas); safe programs are domain independent and translatable to
// algebra= (Proposition 6.1).
func CheckSafe(p *DatalogProgram) error { return datalog.CheckProgramSafe(p) }

// IsStratified reports whether the program admits a stratification.
func IsStratified(p *DatalogProgram) bool { return datalog.IsStratified(p) }

// Translations (the paper's constructive equivalences).

// ToDeduction translates an algebra= program to an equivalent deductive
// program under the valid semantics (Proposition 5.4).
func ToDeduction(p *Program) (*DatalogProgram, error) { return translate.CoreToDatalog(p) }

// ToAlgebra translates a safe deductive program to an equivalent algebra=
// program plus its extracted database (Proposition 6.1).
func ToAlgebra(p *DatalogProgram) (*Program, DB, error) { return translate.DatalogToCore(p) }

// ToPositiveIFP translates a stratified safe program to a positive
// IFP-algebra program (Theorem 4.3).
func ToPositiveIFP(p *DatalogProgram) (*Program, DB, error) {
	return translate.StratifiedToPositiveIFP(p)
}

// StepIndex applies the Proposition 5.2 transformation: valid evaluation of
// the result replays the inflationary evaluation of p, for any bound at
// least the number of inflationary steps.
func StepIndex(p *DatalogProgram, bound int64) *DatalogProgram {
	return translate.StepIndex(p, bound)
}

// StableSets evaluates an algebra= program under the stable-model reading
// (the paper's concluding remark made executable): one map per stable model,
// giving each defined set's content. maxUndef bounds the residual search.
func StableSets(p *Program, db DB, maxUndef int) ([]map[string]Set, error) {
	return translate.StableSets(p, db, maxUndef)
}

// WellFoundedSets evaluates an algebra= program under the well-founded
// reading, returning certain and possible bounds per defined set.
func WellFoundedSets(p *Program, db DB) (lower, upper map[string]Set, err error) {
	return translate.WellFoundedSets(p, db)
}
