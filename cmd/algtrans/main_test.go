package main

import (
	"strings"
	"testing"

	"algrec/internal/algebra"
	"algrec/internal/algebra/parse"
	"algrec/internal/core"
	"algrec/internal/datalog"
	"algrec/internal/datalog/ground"
	"algrec/internal/semantics"
	"algrec/internal/value"
)

func runTrans(t *testing.T, args []string, input string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(args, strings.NewReader(input), &out)
	return out.String(), err
}

const winDatalog = "move(a, a). move(a, b).\nwin(X) :- move(X, Y), not win(Y).\n"

// TestRoundTripDlog2Alg: the printed translation re-parses and evaluates to
// the same valid model as the input program — the whole CLI surface is
// semantics-preserving, not just the in-memory API.
func TestRoundTripDlog2Alg(t *testing.T) {
	out, err := runTrans(t, []string{"-mode", "dlog2alg"}, winDatalog)
	if err != nil {
		t.Fatal(err)
	}
	script, err := parse.ParseScript(out)
	if err != nil {
		t.Fatalf("translated output does not re-parse: %v\n%s", err, out)
	}
	res, err := core.EvalValid(script.Program, script.DB, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	p := datalog.MustParse(winDatalog)
	in, err := semantics.Eval(p, semantics.SemValid, ground.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	var want []value.Value
	for _, f := range in.TrueFacts("win") {
		want = append(want, f.Args[0])
	}
	if !value.Equal(res.Set("win"), value.NewSet(want...)) {
		t.Errorf("round trip: %v vs %v", res.Set("win"), want)
	}
}

func TestRoundTripAlg2Dlog(t *testing.T) {
	out, err := runTrans(t, []string{"-mode", "alg2dlog"}, `
rel move = {(a, b), (b, c)};
def win = map(diff(move, product(map(move, \x -> x.1), win)), \x -> x.1);
`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := datalog.ParseProgram(out)
	if err != nil {
		t.Fatalf("translated output does not re-parse: %v\n%s", err, out)
	}
	in, err := semantics.Eval(p, semantics.SemValid, ground.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	wins := in.TrueFacts("win")
	if len(wins) != 1 || wins[0].Key() != "win(b)" {
		t.Errorf("translated program win = %v", wins)
	}
}

func TestStrat2IFP(t *testing.T) {
	out, err := runTrans(t, []string{"-mode", "strat2ifp"}, `
e(1, 2). n(1). n(2). n(3).
r(X) :- e(1, X).
un(X) :- n(X), not r(X).
`)
	if err != nil {
		t.Fatal(err)
	}
	script, err := parse.ParseScript(out)
	if err != nil {
		t.Fatalf("strat2ifp output does not re-parse: %v\n%s", err, out)
	}
	res, err := core.EvalValid(script.Program, script.DB, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(res.Set("un"), value.NewSet(value.Int(1), value.Int(3))) {
		t.Errorf("un = %v", res.Set("un"))
	}
}

func TestStepIndexMode(t *testing.T) {
	out, err := runTrans(t, []string{"-mode", "stepindex", "-bound", "4"}, "r(a).\nq(X) :- r(X), not q(X).\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "q__s(plus(I__, 1), X)") {
		t.Errorf("stepindex output:\n%s", out)
	}
	p, err := datalog.ParseProgram(out)
	if err != nil {
		t.Fatalf("stepindex output does not re-parse: %v", err)
	}
	in, err := semantics.Eval(p, semantics.SemValid, ground.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got := in.TruthOf(datalog.Fact{Pred: "q", Args: []value.Value{value.String("a")}}); got != semantics.True {
		t.Errorf("q(a) = %v after step indexing", got)
	}
}

func TestElimIFP(t *testing.T) {
	out, err := runTrans(t, []string{"-mode", "elimifp"}, `
query ifp(x, diff({a}, x));
`)
	if err != nil {
		t.Fatal(err)
	}
	script, err := parse.ParseScript(out)
	if err != nil {
		t.Fatalf("elimifp output does not re-parse: %v\n%s", err, out)
	}
	res, err := core.EvalValid(script.Program, script.DB, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(res.Set("ifpresult"), value.NewSet(value.String("a"))) {
		t.Errorf("ifpresult = %v, want {a}", res.Set("ifpresult"))
	}
	if strings.Contains(out, "ifp(") {
		t.Error("elimifp output still contains an IFP operator")
	}
}

func TestTransErrors(t *testing.T) {
	cases := [][2]string{
		{"", "unknown -mode"},
		{"nosuchmode", "unknown -mode"},
	}
	for _, c := range cases {
		if _, err := runTrans(t, []string{"-mode", c[0]}, "p.\n"); err == nil || !strings.Contains(err.Error(), c[1]) {
			t.Errorf("mode %q: got %v", c[0], err)
		}
	}
	if _, err := runTrans(t, []string{"-mode", "dlog2alg"}, "q(X) :- not r(X).\n"); err == nil {
		t.Error("unsafe program not surfaced")
	}
	if _, err := runTrans(t, []string{"-mode", "strat2ifp"}, winDatalog); err == nil {
		t.Error("non-stratified program not surfaced")
	}
	if _, err := runTrans(t, []string{"-mode", "elimifp"}, "def d = {1};"); err == nil {
		t.Error("elimifp without query not surfaced")
	}
	if _, err := runTrans(t, []string{"-mode", "elimifp"}, "def d = {1}; query d;"); err == nil {
		t.Error("elimifp with definitions not surfaced")
	}
}
