// Command algtrans applies the paper's constructive translations between
// the deductive and algebraic paradigms and prints the result.
//
// Usage:
//
//	algtrans -mode alg2dlog    [file]   algebra= script  -> deductive program (Prop 5.4)
//	algtrans -mode dlog2alg    [file]   safe deduction   -> algebra= script  (Prop 6.1)
//	algtrans -mode strat2ifp   [file]   stratified       -> positive IFP-algebra (Thm 4.3)
//	algtrans -mode stepindex -bound N [file]  any program -> step-indexed program (Prop 5.2)
//	algtrans -mode elimifp     [file]   IFP query script -> IFP-free algebra= (Thm 3.5)
//
// Input comes from the file argument or standard input; algebra= scripts use
// the algq syntax, deductive programs the dlog syntax. For -mode elimifp the
// script must contain exactly one `query` statement (the IFP-algebra query
// to eliminate); the output program's `ifpresult` definition holds its
// value.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"algrec/internal/algebra/parse"
	"algrec/internal/datalog"
	"algrec/internal/translate"
	"algrec/internal/value"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "algtrans:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("algtrans", flag.ContinueOnError)
	mode := fs.String("mode", "", "translation: alg2dlog, dlog2alg, strat2ifp, stepindex, or elimifp")
	bound := fs.Int64("bound", 64, "stepindex: index bound (must be at least the inflationary step count)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	src, err := readInput(fs.Arg(0), stdin)
	if err != nil {
		return err
	}

	switch *mode {
	case "alg2dlog":
		script, err := parse.ParseScript(src)
		if err != nil {
			return err
		}
		prog, err := translate.CoreToDatalog(script.Program)
		if err != nil {
			return err
		}
		prog.AddFacts(translate.DBFacts(script.DB)...)
		fmt.Fprint(stdout, prog.String())
	case "dlog2alg":
		p, err := datalog.ParseProgram(src)
		if err != nil {
			return err
		}
		cp, db, err := translate.DatalogToCore(p)
		if err != nil {
			return err
		}
		printDB(stdout, db)
		fmt.Fprint(stdout, cp.String())
	case "strat2ifp":
		p, err := datalog.ParseProgram(src)
		if err != nil {
			return err
		}
		cp, db, err := translate.StratifiedToPositiveIFP(p)
		if err != nil {
			return err
		}
		printDB(stdout, db)
		fmt.Fprint(stdout, cp.String())
	case "stepindex":
		p, err := datalog.ParseProgram(src)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, translate.StepIndex(p, *bound).String())
	case "elimifp":
		script, err := parse.ParseScript(src)
		if err != nil {
			return err
		}
		if len(script.Queries) != 1 {
			return fmt.Errorf("-mode elimifp needs exactly one query statement, got %d", len(script.Queries))
		}
		if len(script.Program.Defs) != 0 {
			return fmt.Errorf("-mode elimifp operates on a plain IFP-algebra query; the script must not contain definitions")
		}
		cp, db, result, err := translate.EliminateIFP(script.Queries[0].Expr, script.DB)
		if err != nil {
			return err
		}
		printDB(stdout, db)
		fmt.Fprint(stdout, cp.String())
		fmt.Fprintf(stdout, "query %s;\n", result)
	default:
		return fmt.Errorf("unknown -mode %q (want alg2dlog, dlog2alg, strat2ifp, stepindex, or elimifp)", *mode)
	}
	return nil
}

func printDB(w io.Writer, db map[string]value.Set) {
	names := make([]string, 0, len(db))
	for n := range db {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "rel %s = %s;\n", n, db[n])
	}
}

func readInput(path string, stdin io.Reader) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
