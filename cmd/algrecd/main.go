// Command algrecd is the resident query service: an HTTP/JSON server that
// keeps named databases in memory and evaluates algebra, ifp-algebra,
// algebra= and datalog queries under any of the six semantics, with a
// compiled-plan cache, per-request budgets and timeouts, and graceful
// shutdown. See docs/server.md for the API.
//
// Usage:
//
//	algrecd [-addr :8372] [-db name=file.alg ...] [-cache 128]
//	        [-timeout 30s] [-max-body 1048576]
//	        [-disk DIR] [-disk-sync] [-mat-budget 1048576] [-scan-workers 0]
//
// Each -db flag registers a database from an algebra= script containing only
// rel statements. With -disk, databases live in on-disk stores under DIR —
// one directory per database, recovered automatically on restart — and
// queries materialize only the relations they read, so a database can exceed
// RAM (-mat-budget caps the resident materialization cache in rows). On
// SIGINT/SIGTERM the server drains: new queries are refused with the
// "shutting-down" error while in-flight requests complete (bounded by
// -grace).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"algrec/internal/obsv"
	"algrec/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "algrecd:", err)
		os.Exit(1)
	}
}

// dbFlags collects repeated -db name=path flags.
type dbFlags []struct{ name, path string }

// String implements flag.Value.
func (d *dbFlags) String() string { return fmt.Sprintf("%d databases", len(*d)) }

// Set implements flag.Value.
func (d *dbFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*d = append(*d, struct{ name, path string }{name, path})
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("algrecd", flag.ContinueOnError)
	addr := fs.String("addr", ":8372", "listen address")
	cache := fs.Int("cache", 128, "compiled-plan LRU capacity (negative disables caching)")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-request evaluation timeout (negative disables)")
	maxBody := fs.Int64("max-body", 1<<20, "request body size limit in bytes")
	grace := fs.Duration("grace", 15*time.Second, "shutdown grace period for draining in-flight requests")
	diskDir := fs.String("disk", "", "back databases with on-disk stores under this directory (empty = in memory)")
	diskSync := fs.Bool("disk-sync", false, "fsync the storage log after every mutation batch")
	matBudget := fs.Int("mat-budget", 0, "disk mode: resident materialization-cache budget in rows (0 = default 1M)")
	scanWorkers := fs.Int("scan-workers", 0, "disk mode: parallel shard scans per materialized relation (0 = GOMAXPROCS)")
	var dbs dbFlags
	fs.Var(&dbs, "db", "register a database: name=file.alg (repeatable; the file is an algebra= script of rel statements)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := server.Config{
		CacheCap:       *cache,
		MaxBodyBytes:   *maxBody,
		DefaultTimeout: *timeout,
	}
	if *diskDir != "" {
		cfg.Storage = &server.StorageConfig{
			Dir:           *diskDir,
			Sync:          *diskSync,
			MatBudgetRows: *matBudget,
			ScanWorkers:   *scanWorkers,
		}
	}
	srv := server.New(cfg)
	recovered, err := srv.OpenStorage()
	if err != nil {
		return fmt.Errorf("storage recovery: %w", err)
	}
	for _, name := range recovered {
		log.Printf("recovered database %q from %s", name, *diskDir)
	}
	for _, d := range dbs {
		src, err := os.ReadFile(d.path)
		if err != nil {
			return err
		}
		db, err := server.LoadDBScript(string(src))
		if err != nil {
			return fmt.Errorf("database %q (%s): %w", d.name, d.path, err)
		}
		if err := srv.RegisterDB(d.name, db); err != nil {
			return fmt.Errorf("database %q: %w", d.name, err)
		}
		log.Printf("registered database %q (%d relations) from %s", d.name, len(db), d.path)
	}
	// Route engine-internal events (fixpoint rounds, grounding passes,
	// stable searches) to the server's /metrics counters too.
	obsv.SetDefault(srv.Collector())

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("algrecd listening on %s", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("draining (grace %s)...", *grace)
	srv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := srv.Close(); err != nil {
		return fmt.Errorf("storage close: %w", err)
	}
	log.Printf("drained; bye")
	return nil
}
