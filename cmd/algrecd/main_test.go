package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDBFlags(t *testing.T) {
	var d dbFlags
	if err := d.Set("g=graph.alg"); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if len(d) != 1 || d[0].name != "g" || d[0].path != "graph.alg" {
		t.Fatalf("d = %+v", d)
	}
	for _, bad := range []string{"nopath", "=x", "x="} {
		if err := d.Set(bad); err == nil {
			t.Errorf("Set(%q) should fail", bad)
		}
	}
	if d.String() == "" {
		t.Error("String() should describe the flag")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag should fail")
	}
	if err := run([]string{"-db", "g=/nonexistent/graph.alg"}); err == nil {
		t.Error("missing database file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.alg")
	if err := os.WriteFile(bad, []byte(`def d = d;`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-db", "g=" + bad})
	if err == nil || !strings.Contains(err.Error(), "rel statements") {
		t.Errorf("a program is not a database: %v", err)
	}
}
