// Command bench runs the experiment suite (DESIGN.md's E1–E10 and P1–P3)
// and prints one table per experiment. With -markdown the output is the
// GitHub-flavored markdown recorded in EXPERIMENTS.md.
//
// Usage:
//
//	bench [-scale N] [-markdown] [-only E9]
package main

import (
	"flag"
	"fmt"
	"os"

	"algrec/internal/expt"
)

func main() {
	scale := flag.Int("scale", 1, "workload scale factor")
	markdown := flag.Bool("markdown", false, "emit markdown tables for EXPERIMENTS.md")
	only := flag.String("only", "", "run a single experiment by id (e.g. E9)")
	flag.Parse()

	failed := false
	for _, s := range expt.DefaultSuites(*scale) {
		if *only != "" && s.ID != *only {
			continue
		}
		tbl, err := s.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", s.ID, err)
			failed = true
			continue
		}
		if *markdown {
			fmt.Print(tbl.Markdown())
		} else {
			fmt.Println(tbl)
		}
		if !tbl.OK {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
