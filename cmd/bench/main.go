// Command bench runs the experiment suite (DESIGN.md's E1–E11, P1–P5 and
// A1–A3) and prints one table per experiment. With -markdown the output is
// the GitHub-flavored markdown recorded in EXPERIMENTS.md. With -parallel
// independent suites and workload sizes run concurrently on a
// GOMAXPROCS-sized worker pool (tables keep their serial order and content;
// timings inside a table then measure contended runs). With -json the
// per-experiment timings and allocation counts are also written to a
// machine-readable file, so the performance trajectory is comparable across
// commits.
//
// Usage:
//
//	bench [-scale N] [-markdown] [-only E9] [-parallel] [-json path]
//
// -json accepts either a file name or an existing directory; a directory
// gets a BENCH_<stamp>.json file created inside it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"algrec/internal/expt"
)

// jsonReport is the schema of the -json output.
type jsonReport struct {
	Stamp      string      `json:"stamp"` // RFC 3339 run time
	Scale      int         `json:"scale"`
	Parallel   bool        `json:"parallel"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Suites     []jsonSuite `json:"suites"`
}

type jsonSuite struct {
	ID         string     `json:"id"`
	Title      string     `json:"title"`
	OK         bool       `json:"ok"`
	WallNS     int64      `json:"wall_ns"`               // parallel runs: summed shard time
	AllocBytes uint64     `json:"alloc_bytes,omitempty"` // serial runs only
	Mallocs    uint64     `json:"mallocs,omitempty"`     // serial runs only
	Header     []string   `json:"header"`
	Rows       [][]string `json:"rows"`
}

func main() {
	scale := flag.Int("scale", 1, "workload scale factor")
	markdown := flag.Bool("markdown", false, "emit markdown tables for EXPERIMENTS.md")
	only := flag.String("only", "", "run a single experiment by id (e.g. E9)")
	parallel := flag.Bool("parallel", false, "run independent suites and workload sizes concurrently")
	jsonPath := flag.String("json", "", "write a machine-readable report to this file (or BENCH_<stamp>.json inside this directory)")
	flag.Parse()

	suites := expt.DefaultSuites(*scale)
	if *only != "" {
		var filtered []expt.Suite
		for _, s := range suites {
			if s.ID == *only {
				filtered = append(filtered, s)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "bench: no experiment %q\n", *only)
			os.Exit(2)
		}
		suites = filtered
	}

	workers := 1
	if *parallel {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	results, err := expt.RunSuites(suites, workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}

	failed := false
	report := jsonReport{
		Stamp:      start.Format(time.RFC3339),
		Scale:      *scale,
		Parallel:   *parallel,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, res := range results {
		tbl := res.Table
		if *markdown {
			fmt.Print(tbl.Markdown())
		} else {
			fmt.Println(tbl)
		}
		if !tbl.OK {
			failed = true
		}
		report.Suites = append(report.Suites, jsonSuite{
			ID:         tbl.ID,
			Title:      tbl.Title,
			OK:         tbl.OK,
			WallNS:     res.Wall.Nanoseconds(),
			AllocBytes: res.AllocBytes,
			Mallocs:    res.Mallocs,
			Header:     tbl.Header,
			Rows:       tbl.Rows,
		})
	}

	if *jsonPath != "" {
		path := *jsonPath
		if st, err := os.Stat(path); err == nil && st.IsDir() {
			path = filepath.Join(path, "BENCH_"+start.Format("20060102T150405")+".json")
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: encoding report: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench: writing report: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: wrote %s\n", path)
	}
	if failed {
		os.Exit(1)
	}
}
