// Command bench runs the experiment suite (DESIGN.md's E1–E11, P1–P9 and
// A1–A4) and prints one table per experiment. With -markdown the output is
// the GitHub-flavored markdown recorded in EXPERIMENTS.md. With -parallel
// independent suites and workload sizes run concurrently on a
// GOMAXPROCS-sized worker pool (tables keep their serial order and content;
// timings inside a table then measure contended runs). With -json the
// per-experiment results, run costs and observability counters are written
// as an expt.Record, so the performance trajectory is comparable across
// commits and EXPERIMENTS.md can be generated from a committed record.
//
// Usage:
//
//	bench [-scale N] [-markdown] [-only E9[,P11,...]] [-parallel] [-noseminaive]
//	      [-nointern] [-nostreaming] [-noidsets] [-noivm] [-json path]
//	      [-trace path] [-pprof dir]
//	bench -render record.json [-update EXPERIMENTS.md]
//
// -noseminaive disables the semi-naive delta fixpoint engine process-wide
// (algebra.DefaultBudget.NoSemiNaive): every IFP iterates naively and
// internal/core uses its unscheduled sequential evaluators — the baseline of
// the A4 ablation. Results are identical either way.
//
// -nointern disables hash-consed value interning process-wide
// (value.SetInterning): the grounder deduplicates facts by canonical key
// strings and the hash join keys its index by string encodings instead of
// interned IDs — the baseline of the P8 ablation. Results are identical
// either way.
//
// -nostreaming disables the streaming execution runtime process-wide
// (algebra.DefaultBudget.NoStreaming): σ/MAP pipelines over products are
// fully materialized operator by operator instead of planned into lazy
// pushdown/hash-join iterators — the baseline of the P9 ablation. Results
// are identical either way.
//
// -noidsets disables the ID-native delta fixpoint kernels process-wide
// (algebra.DefaultBudget.NoIDSets): semi-naive IFP rounds run on value-space
// sets with per-round set algebra instead of sorted-ID galloping kernels with
// a per-fixpoint join index — the baseline of the P10 ablation. Results are
// identical either way.
//
// -noivm disables incremental view maintenance process-wide
// (algebra.DefaultBudget.NoIVM): every ivm.View falls back to re-evaluating
// its plan from scratch on each mutation batch and diffing the outcomes —
// the baseline of the P11 ablation. Results are identical either way.
//
// -json accepts either a file name or an existing directory; a directory
// gets a BENCH_<stamp>.json file created inside it. Serial runs attribute
// observability counters, CPU time and allocations to each experiment;
// parallel runs only record whole-run counters and summed shard walls.
//
// -trace streams every observability event (fixpoints, groundings,
// translations, stable searches, experiment shards) as JSON lines while the
// run executes; -pprof writes cpu.pprof and heap.pprof profiles of the run
// into a directory.
//
// -render skips running experiments entirely: it renders the generated
// EXPERIMENTS.md section from a previously written record, to stdout or —
// with -update — spliced between the document's generated-section markers.
// `go generate ./internal/expt` uses this mode to keep EXPERIMENTS.md's
// tables in sync with the committed record.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"algrec/internal/algebra"
	"algrec/internal/expt"
	"algrec/internal/obsv"
	"algrec/internal/value"
)

func main() {
	scale := flag.Int("scale", 1, "workload scale factor")
	markdown := flag.Bool("markdown", false, "emit markdown tables for EXPERIMENTS.md")
	only := flag.String("only", "", "run selected experiments by comma-separated ids (e.g. E9 or P10,P11)")
	parallel := flag.Bool("parallel", false, "run independent suites and workload sizes concurrently")
	noSemiNaive := flag.Bool("noseminaive", false, "disable the semi-naive delta fixpoint engine (A4 ablation baseline)")
	noIntern := flag.Bool("nointern", false, "disable hash-consed value interning (P8 ablation baseline)")
	noStreaming := flag.Bool("nostreaming", false, "disable the streaming execution runtime (P9 ablation baseline)")
	noIDSets := flag.Bool("noidsets", false, "disable the ID-native delta fixpoint kernels (P10 ablation baseline)")
	noIVM := flag.Bool("noivm", false, "disable incremental view maintenance (P11 ablation baseline)")
	jsonPath := flag.String("json", "", "write an expt.Record report to this file (or BENCH_<stamp>.json inside this directory)")
	tracePath := flag.String("trace", "", "stream observability events as JSON lines to this file")
	pprofDir := flag.String("pprof", "", "write cpu.pprof and heap.pprof for the run into this directory")
	render := flag.String("render", "", "render EXPERIMENTS.md tables from this record file instead of running experiments")
	update := flag.String("update", "", "with -render: splice the rendered section into this markdown file in place")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "Usage: bench [-scale N] [-markdown] [-only ID[,ID...]] [-parallel] [-noseminaive] [-nointern] [-nostreaming] [-noidsets] [-noivm] [-json path] [-trace path] [-pprof dir]")
		fmt.Fprintln(os.Stderr, "       bench -render record.json [-update EXPERIMENTS.md]")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *render != "" {
		if err := renderRecord(*render, *update); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *update != "" {
		fmt.Fprintln(os.Stderr, "bench: -update requires -render")
		os.Exit(2)
	}
	if *noSemiNaive {
		// Budget.WithDefaults ORs this in, so every evaluator built during
		// the run — including those constructed deep inside experiments —
		// falls back to the naive fixpoint engines.
		algebra.DefaultBudget.NoSemiNaive = true
	}
	if *noIntern {
		// Process-wide: the grounder falls back to canonical-key-string fact
		// dedup and the hash join to string-keyed indexes. Results are
		// identical either way; P8 measures the difference.
		value.SetInterning(false)
	}
	if *noStreaming {
		// Budget.WithDefaults ORs this in, so every evaluator built during
		// the run materializes its pipelines. Results are identical either
		// way; P9 measures the difference.
		algebra.DefaultBudget.NoStreaming = true
	}
	if *noIDSets {
		// Budget.WithDefaults ORs this in, so every delta fixpoint runs its
		// rounds on value-space sets instead of the sorted-ID kernels.
		// Results are identical either way; P10 measures the difference.
		algebra.DefaultBudget.NoIDSets = true
	}
	if *noIVM {
		// Budget.WithDefaults ORs this in, so every incremental view built
		// during the run recomputes from scratch per mutation batch.
		// Results are identical either way; P11 measures the difference.
		algebra.DefaultBudget.NoIVM = true
	}

	suites := expt.DefaultSuites(*scale)
	if *only != "" {
		wanted := map[string]bool{}
		for _, id := range strings.Split(*only, ",") {
			if id = strings.TrimSpace(id); id != "" {
				wanted[id] = true
			}
		}
		var filtered []expt.Suite
		for _, s := range suites {
			if wanted[s.ID] {
				filtered = append(filtered, s)
				delete(wanted, s.ID)
			}
		}
		if len(wanted) > 0 {
			for id := range wanted {
				fmt.Fprintf(os.Stderr, "bench: no experiment %q\n", id)
			}
			os.Exit(2)
		}
		suites = filtered
	}

	// Observability: a Stats collector always runs (it feeds the -json
	// record), optionally fanned out to a JSONL trace sink.
	stats := obsv.NewStats()
	collector := obsv.Collector(stats)
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: opening trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		collector = obsv.Multi(stats, obsv.NewJSONL(f))
	}
	obsv.SetDefault(collector)

	if *pprofDir != "" {
		f, err := os.Create(filepath.Join(*pprofDir, "cpu.pprof"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: opening cpu profile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bench: starting cpu profile: %v\n", err)
			os.Exit(1)
		}
	}

	workers := 1
	if *parallel {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	rec := &expt.Record{
		Stamp:      start.Format(time.RFC3339),
		Scale:      *scale,
		Parallel:   *parallel,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	results, runErr := runSuites(suites, workers, stats, rec)

	if *pprofDir != "" {
		pprof.StopCPUProfile()
		if f, err := os.Create(filepath.Join(*pprofDir, "heap.pprof")); err == nil {
			runtime.GC()
			_ = pprof.WriteHeapProfile(f)
			f.Close()
		} else {
			fmt.Fprintf(os.Stderr, "bench: opening heap profile: %v\n", err)
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", runErr)
		os.Exit(1)
	}

	failed := false
	for _, res := range results {
		if *markdown {
			fmt.Print(res.Table.Markdown())
		} else {
			fmt.Println(res.Table)
		}
		if !res.Table.OK {
			failed = true
		}
	}

	if *jsonPath != "" {
		if err := writeRecord(rec, *jsonPath, start); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runSuites executes the suites and fills rec with results, run costs and
// observability counters. Serial runs execute one suite at a time so the
// Stats snapshot delta around each attributes its counters; parallel runs
// interleave suites and can only attribute whole-run counters.
func runSuites(suites []expt.Suite, workers int, stats *obsv.Stats, rec *expt.Record) ([]expt.SuiteResult, error) {
	base := stats.Snapshot()
	var results []expt.SuiteResult
	if workers <= 1 {
		start := time.Now()
		prev := base
		for _, s := range suites {
			res, err := expt.RunInstrumented(s)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", s.ID, err)
			}
			cur := stats.Snapshot()
			results = append(results, res)
			rec.Suites = append(rec.Suites, recordSuite(res, cur.Sub(prev)))
			rec.CPUNS += res.CPU.Nanoseconds()
			prev = cur
		}
		rec.WallNS = time.Since(start).Nanoseconds()
	} else {
		out, st, err := expt.RunSuitesStats(suites, workers)
		if err != nil {
			return nil, err
		}
		results = out
		rec.WallNS = st.Wall.Nanoseconds()
		rec.CPUNS = st.CPU.Nanoseconds()
		rec.Utilization = st.Utilization
		for _, res := range out {
			rec.Suites = append(rec.Suites, recordSuite(res, nil))
		}
	}
	rec.Counters = stats.Snapshot().Sub(base)
	return results, nil
}

// recordSuite converts one suite's result (and, for serial runs, its counter
// delta) into the record's wire form.
func recordSuite(res expt.SuiteResult, counters obsv.Snapshot) expt.RecordSuite {
	return expt.RecordSuite{
		ID:         res.Table.ID,
		Title:      res.Table.Title,
		OK:         res.Table.OK,
		WallNS:     res.Wall.Nanoseconds(),
		CPUNS:      res.CPU.Nanoseconds(),
		AllocBytes: res.AllocBytes,
		Mallocs:    res.Mallocs,
		Shards:     res.Shards,
		Counters:   counters,
		Header:     res.Table.Header,
		Rows:       res.Table.Rows,
		Notes:      res.Table.Notes,
	}
}

// writeRecord serializes the record to path (or BENCH_<stamp>.json inside
// path when it is a directory).
func writeRecord(rec *expt.Record, path string, start time.Time) error {
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		path = filepath.Join(path, "BENCH_"+start.Format("20060102T150405")+".json")
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("writing report: %w", err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", path)
	return nil
}

// renderRecord implements -render: regenerate the EXPERIMENTS.md tables from
// a committed record, printing to stdout or splicing into updatePath.
func renderRecord(recordPath, updatePath string) error {
	rec, err := expt.LoadRecord(recordPath)
	if err != nil {
		return err
	}
	generated := expt.RenderGenerated(rec)
	if updatePath == "" {
		fmt.Print(generated)
		return nil
	}
	doc, err := os.ReadFile(updatePath)
	if err != nil {
		return err
	}
	spliced, err := expt.SpliceGenerated(string(doc), generated)
	if err != nil {
		return err
	}
	if spliced == string(doc) {
		return nil
	}
	return os.WriteFile(updatePath, []byte(spliced), 0o644)
}
