// Command algq evaluates an algebra= script: database relations, recursive
// definitions, and queries, under the valid-model semantics (or the
// inflationary reading with -inflationary, or the stable-model reading with
// -stable).
//
// Usage:
//
//	algq [-inflationary | -stable] [-defs] [file]
//
// For each `query` statement the certain answer is printed; elements whose
// membership is undefined (the program is not well defined on this
// database) are reported separately. With -defs every defined constant is
// printed too.
//
// Example (the paper's Example 3):
//
//	$ algq <<'EOF'
//	rel move = {(a, b), (b, c), (b, d)};
//	def win = map(diff(move, product(map(move, \x -> x.1), win)), \x -> x.1);
//	query win;
//	EOF
//	query at 4:7 = {b}
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"algrec/internal/query"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "algq:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("algq", flag.ContinueOnError)
	inflationary := fs.Bool("inflationary", false, "use the inflationary reading of the equations instead of the valid semantics")
	stable := fs.Bool("stable", false, "enumerate the stable-model readings instead of the valid semantics")
	defs := fs.Bool("defs", false, "print every defined constant, not only queries")
	maxUndef := fs.Int("max-undef", 24, "stable: maximum residual size to search")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inflationary && *stable {
		return fmt.Errorf("-inflationary and -stable are mutually exclusive")
	}
	sem := query.SemValid
	switch {
	case *inflationary:
		sem = query.SemInflationary
	case *stable:
		sem = query.SemStable
	}

	src, err := query.ReadInput(fs.Arg(0), stdin)
	if err != nil {
		return err
	}
	plan, err := query.Compile(query.LangAlgebraEq, sem, src)
	if err != nil {
		return err
	}
	out, err := query.Execute(plan, nil, query.Options{MaxUndef: *maxUndef})
	if err != nil {
		return err
	}
	query.WriteAlgqText(stdout, out, *defs)
	return nil
}
