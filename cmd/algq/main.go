// Command algq evaluates an algebra= script: database relations, recursive
// definitions, and queries, under the valid-model semantics (or the
// inflationary reading with -inflationary, or the stable-model reading with
// -stable).
//
// Usage:
//
//	algq [-inflationary | -stable] [-defs] [file]
//
// For each `query` statement the certain answer is printed; elements whose
// membership is undefined (the program is not well defined on this
// database) are reported separately. With -defs every defined constant is
// printed too.
//
// Example (the paper's Example 3):
//
//	$ algq <<'EOF'
//	rel move = {(a, b), (b, c), (b, d)};
//	def win = map(diff(move, product(map(move, \x -> x.1), win)), \x -> x.1);
//	query win;
//	EOF
//	query at 4:7 = {b}
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"algrec/internal/algebra"
	"algrec/internal/algebra/parse"
	"algrec/internal/core"
	"algrec/internal/translate"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "algq:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("algq", flag.ContinueOnError)
	inflationary := fs.Bool("inflationary", false, "use the inflationary reading of the equations instead of the valid semantics")
	stable := fs.Bool("stable", false, "enumerate the stable-model readings instead of the valid semantics")
	defs := fs.Bool("defs", false, "print every defined constant, not only queries")
	maxUndef := fs.Int("max-undef", 24, "stable: maximum residual size to search")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inflationary && *stable {
		return fmt.Errorf("-inflationary and -stable are mutually exclusive")
	}

	src, err := readInput(fs.Arg(0), stdin)
	if err != nil {
		return err
	}
	script, err := parse.ParseScript(src)
	if err != nil {
		return err
	}

	switch {
	case *stable:
		models, err := translate.StableSets(script.Program, script.DB, *maxUndef)
		if err != nil {
			return err
		}
		if len(models) == 0 {
			fmt.Fprintln(stdout, "% no stable readings")
			return nil
		}
		for i, m := range models {
			fmt.Fprintf(stdout, "%% stable reading %d of %d\n", i+1, len(models))
			for _, d := range script.Program.Defs {
				if len(d.Params) == 0 {
					fmt.Fprintf(stdout, "%s = %s\n", d.Name, m[d.Name])
				}
			}
		}
		return nil
	case *inflationary:
		sets, err := core.EvalInflationary(script.Program, script.DB, algebra.Budget{})
		if err != nil {
			return err
		}
		if *defs || len(script.Queries) == 0 {
			for _, d := range script.Program.Defs {
				if len(d.Params) > 0 {
					continue
				}
				fmt.Fprintf(stdout, "%s = %s\n", d.Name, sets[d.Name])
			}
		}
		for _, q := range script.Queries {
			db := script.DB.Clone()
			for name, s := range sets {
				db[name] = s
			}
			got, err := algebra.Eval(q.Expr, db)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%s = %s\n", q.Src, got)
		}
		return nil
	}

	res, err := core.EvalValid(script.Program, script.DB, algebra.Budget{})
	if err != nil {
		return err
	}
	if !res.WellDefined() {
		fmt.Fprintln(stdout, "% warning: the program is not well defined on this database (no initial valid model);")
		fmt.Fprintln(stdout, "% undefined memberships are reported per set below")
	}
	if *defs || len(script.Queries) == 0 {
		for _, d := range script.Program.Defs {
			if len(d.Params) > 0 {
				continue
			}
			fmt.Fprintf(stdout, "%s = %s", d.Name, res.Set(d.Name))
			if u := res.UndefElems(d.Name); !u.IsEmpty() {
				fmt.Fprintf(stdout, "  %% undefined: %s", u)
			}
			fmt.Fprintln(stdout)
		}
	}
	for _, q := range script.Queries {
		lo, err := res.QueryLower(q.Expr)
		if err != nil {
			return err
		}
		up, err := res.QueryUpper(q.Expr)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s = %s", q.Src, lo)
		if diff := up.Diff(lo); !diff.IsEmpty() {
			fmt.Fprintf(stdout, "  %% undefined: %s", diff)
		}
		fmt.Fprintln(stdout)
	}
	return nil
}

func readInput(path string, stdin io.Reader) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
