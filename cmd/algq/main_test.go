package main

import (
	"strings"
	"testing"
)

const winScript = `
rel move = {(a, b), (b, c), (b, d)};
def win = map(diff(move, product(map(move, \x -> x.1), win)), \x -> x.1);
query win;
`

func runAlgq(t *testing.T, args []string, input string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(args, strings.NewReader(input), &out)
	return out.String(), err
}

func TestRunValidQuery(t *testing.T) {
	out, err := runAlgq(t, nil, winScript)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "= {b}") {
		t.Errorf("win query output:\n%s", out)
	}
}

func TestRunUndefinedWarning(t *testing.T) {
	out, err := runAlgq(t, []string{"-defs"}, `
rel move = {(a, a)};
def win = map(diff(move, product(map(move, \x -> x.1), win)), \x -> x.1);
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "not well defined") {
		t.Errorf("missing warning:\n%s", out)
	}
	if !strings.Contains(out, "undefined: {a}") {
		t.Errorf("missing undefined set:\n%s", out)
	}
}

func TestRunInflationary(t *testing.T) {
	out, err := runAlgq(t, []string{"-inflationary"}, `
def s = diff({a}, s);
query s;
`)
	if err != nil {
		t.Fatal(err)
	}
	// Inflationary reading of S = {a} − S gives {a} (the IFP behaviour).
	if !strings.Contains(out, "= {a}") {
		t.Errorf("inflationary output:\n%s", out)
	}
}

func TestRunStable(t *testing.T) {
	out, err := runAlgq(t, []string{"-stable"}, `
rel move = {(a, b), (b, a)};
def win = map(diff(move, product(map(move, \x -> x.1), win)), \x -> x.1);
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "stable reading 1 of 2") {
		t.Errorf("stable output:\n%s", out)
	}
	if !strings.Contains(out, "win = {a}") || !strings.Contains(out, "win = {b}") {
		t.Errorf("stable models missing:\n%s", out)
	}
	// no stable readings
	out2, err := runAlgq(t, []string{"-stable"}, "def s = diff({a}, s);\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2, "% no stable readings") {
		t.Errorf("odd loop output:\n%s", out2)
	}
}

func TestRunDefsWithoutQueries(t *testing.T) {
	out, err := runAlgq(t, nil, "def q = union({1}, {2});\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "q = {1, 2}") {
		t.Errorf("defs output:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := runAlgq(t, nil, "rel r = 5;"); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := runAlgq(t, []string{"-inflationary", "-stable"}, "def q = {1};"); err == nil {
		t.Error("conflicting flags not surfaced")
	}
	if _, err := runAlgq(t, []string{"no-such-file.alg"}, ""); err == nil {
		t.Error("missing file not surfaced")
	}
}
