package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGolden pins the CLI's stdout bit-for-bit on the committed example
// workloads: the shared pipeline extraction (internal/query) must not change
// a single byte of output. Regenerate with:
//
//	go build -o /tmp/algq ./cmd/algq && /tmp/algq <flags> <input> > <golden>
func TestGolden(t *testing.T) {
	cases := []struct {
		golden string
		args   []string
	}{
		{"tc.valid.golden", []string{"testdata/tc.alg"}},
		{"tc.inflationary.golden", []string{"-inflationary", "testdata/tc.alg"}},
		{"wingame.valid.golden", []string{"testdata/wingame.alg"}},
		{"wingame.stable.golden", []string{"-stable", "testdata/wingame.alg"}},
		{"wincycle.valid.golden", []string{"-defs", "testdata/wincycle.alg"}},
		{"wincycle.stable.golden", []string{"-stable", "testdata/wincycle.alg"}},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			if err := run(tc.args, strings.NewReader(""), &out); err != nil {
				t.Fatal(err)
			}
			if out.String() != string(want) {
				t.Errorf("output diverged from %s:\n got:\n%s\nwant:\n%s", tc.golden, out.String(), want)
			}
		})
	}
}
