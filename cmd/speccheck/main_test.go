package main

import (
	"strings"
	"testing"
)

func TestParseSpecExample2(t *testing.T) {
	cs, err := parseSpec(`
% Example 2
consts a b c;
a != b -> a = c;
a != c -> a = b;
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Consts) != 3 || len(cs.Clauses) != 2 {
		t.Fatalf("parsed %d consts, %d clauses", len(cs.Consts), len(cs.Clauses))
	}
	if !cs.Clauses[0].Conds[0].Negated || cs.Clauses[0].A != "a" || cs.Clauses[0].B != "c" {
		t.Errorf("clause 0 = %+v", cs.Clauses[0])
	}
	if _, ok, err := cs.InitialValidModel(); err != nil || ok {
		t.Errorf("Example 2 should have no initial valid model: %v %v", ok, err)
	}
}

func TestParseSpecForms(t *testing.T) {
	cs, err := parseSpec("consts x y;\nx = y;\nx = y, x != y -> y = x;")
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Clauses) != 2 || len(cs.Clauses[1].Conds) != 2 {
		t.Fatalf("clauses = %+v", cs.Clauses)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"consts a;\nb = a;", "undeclared constant"},
		{"consts a b;\na -> a = b;", "bad condition"},
		{"consts a b;\na = b -> a != b;", "conclusion must be an equality"},
		{"consts a b;\n= b;", "bad condition"},
		{"consts a a;", "duplicate constant"},
	}
	for _, c := range cases {
		_, err := parseSpec(c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("parseSpec(%q): got %v, want error containing %q", c.src, err, c.wantSub)
		}
	}
}
