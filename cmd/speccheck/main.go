// Command speccheck decides whether a constant-only specification with
// generalized conditional equations has an initial valid model — the
// decidable fragment of Proposition 2.3(2).
//
// Input syntax (file argument or standard input):
//
//	consts a b c;
//	a != b -> a = c;
//	a != c -> a = b;
//
// Each non-consts line is a clause `cond, cond, ... -> a = b;` or an
// unconditional `a = b;`. The command prints all models, the valid
// interpretation, the valid models, and the initial valid model or NONE.
// The example above is the paper's Example 2 and prints NONE.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"algrec/internal/spec/validspec"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "Usage: speccheck [file]")
		fmt.Fprintln(os.Stderr, "Decides whether the constant-only specification read from the file")
		fmt.Fprintln(os.Stderr, "argument or standard input has an initial valid model (Prop 2.3(2)).")
	}
	flag.Parse()
	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cs, err := parseSpec(src)
	if err != nil {
		fatal(err)
	}

	models, err := cs.Models()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("constants: %s\n", strings.Join(cs.Consts, ", "))
	fmt.Printf("models (%d):\n", len(models))
	for _, m := range models {
		fmt.Printf("  %s\n", cs.Render(m))
	}
	T, U, err := cs.ValidInterpretation()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("valid interpretation: certainly-equal %s, possibly-equal %s\n", cs.Render(T), cs.Render(U))
	valid, err := cs.ValidModels()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("valid models (%d):\n", len(valid))
	for _, m := range valid {
		fmt.Printf("  %s\n", cs.Render(m))
	}
	m, ok, err := cs.InitialValidModel()
	if err != nil {
		fatal(err)
	}
	if ok {
		fmt.Printf("initial valid model: %s\n", cs.Render(m))
	} else {
		fmt.Println("initial valid model: NONE")
	}
}

// parseSpec parses the tiny speccheck syntax described in the package
// comment.
func parseSpec(src string) (*validspec.ConstSpec, error) {
	cs := &validspec.ConstSpec{}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, "%"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		line = strings.TrimSuffix(line, ";")
		if rest, ok := strings.CutPrefix(line, "consts "); ok {
			cs.Consts = append(cs.Consts, strings.Fields(rest)...)
			continue
		}
		var condPart, conclPart string
		if i := strings.Index(line, "->"); i >= 0 {
			condPart, conclPart = line[:i], line[i+2:]
		} else {
			conclPart = line
		}
		cl := validspec.Clause{}
		if strings.TrimSpace(condPart) != "" {
			for _, c := range strings.Split(condPart, ",") {
				lit, err := parseLit(c)
				if err != nil {
					return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
				}
				cl.Conds = append(cl.Conds, lit)
			}
		}
		concl, err := parseLit(conclPart)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		if concl.Negated {
			return nil, fmt.Errorf("line %d: a clause conclusion must be an equality", lineNo+1)
		}
		cl.A, cl.B = concl.A, concl.B
		cs.Clauses = append(cs.Clauses, cl)
	}
	if err := cs.Validate(); err != nil {
		return nil, err
	}
	return cs, nil
}

func parseLit(s string) (validspec.Lit, error) {
	if i := strings.Index(s, "!="); i >= 0 {
		a, b := strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+2:])
		if a == "" || b == "" {
			return validspec.Lit{}, fmt.Errorf("bad condition %q", s)
		}
		return validspec.Lit{A: a, B: b, Negated: true}, nil
	}
	if i := strings.Index(s, "="); i >= 0 {
		a, b := strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:])
		if a == "" || b == "" {
			return validspec.Lit{}, fmt.Errorf("bad condition %q", s)
		}
		return validspec.Lit{A: a, B: b}, nil
	}
	return validspec.Lit{}, fmt.Errorf("bad condition %q (want a = b or a != b)", s)
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "speccheck:", err)
	os.Exit(1)
}
