package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestCleanCampaign runs a short real campaign over the whole matrix and
// expects agreement everywhere.
func TestCleanCampaign(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-seeds", "25", "-out", filepath.Join(t.TempDir(), "repros"), "-v"}, &out, &errb)
	if code != 0 {
		t.Fatalf("campaign failed (exit %d):\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "all oracles agree") {
		t.Errorf("missing agreement summary:\n%s", out.String())
	}
}

// TestInjectedFaultCaughtAndShrunk is the harness acceptance test: with the
// delta-window fault planted, the campaign must fail, and the written repro
// must carry a witness shrunk to at most 10 atoms.
func TestInjectedFaultCaughtAndShrunk(t *testing.T) {
	dir := t.TempDir()
	repros := filepath.Join(dir, "repros")
	trace := filepath.Join(dir, "trace.jsonl")
	var out, errb strings.Builder
	code := run([]string{"-oracle", "expr-seminaive", "-seeds", "40",
		"-inject", "drop-max", "-out", repros, "-trace", trace}, &out, &errb)
	if code != 1 {
		t.Fatalf("want exit 1 with a planted fault, got %d:\n%s%s", code, out.String(), errb.String())
	}
	files, err := os.ReadDir(repros)
	if err != nil || len(files) == 0 {
		t.Fatalf("no repro files written: %v", err)
	}
	repro, err := os.ReadFile(filepath.Join(repros, files[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`shrunk witness \(size (\d+)\)`).FindSubmatch(repro)
	if m == nil {
		t.Fatalf("repro has no shrunk witness:\n%s", repro)
	}
	if size, _ := strconv.Atoi(string(m[1])); size > 10 {
		t.Errorf("shrunk witness has %d atoms, want <= 10:\n%s", size, repro)
	}
	for _, want := range []string{"oracle: expr-seminaive", "divergence:", "original instance"} {
		if !strings.Contains(string(repro), want) {
			t.Errorf("repro missing %q:\n%s", want, repro)
		}
	}
	tr, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tr), `"event"`) {
		t.Errorf("trace has no observability events:\n%.400s", tr)
	}
}

// TestUsageErrors checks flag and name validation exit codes.
func TestUsageErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-oracle", "nope"}, &out, &errb); code != 2 {
		t.Errorf("unknown oracle: want exit 2, got %d", code)
	}
	if !strings.Contains(errb.String(), "known oracles") {
		t.Errorf("unknown-oracle error should list the matrix:\n%s", errb.String())
	}
	if code := run([]string{"-inject", "nope"}, &out, &errb); code != 2 {
		t.Errorf("unknown fault: want exit 2, got %d", code)
	}
	if code := run([]string{"-bogusflag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: want exit 2, got %d", code)
	}
}
