// Command fuzzdiff drives offline differential-fuzzing campaigns over the
// oracle matrix of internal/diffcheck: generate random well-typed instances
// with internal/randgen, run each through an oracle's paired theorem
// pipelines, and report any divergence as a greedily shrunk witness.
//
// Usage:
//
//	fuzzdiff [-oracle name] [-seeds N] [-start N] [-size N] [-duration d]
//	         [-out dir] [-inject fault] [-trace path] [-v]
//
// With no -oracle every oracle in the matrix runs. -seeds bounds the number
// of instances per oracle; -duration bounds the whole campaign's wall clock
// (whichever limit is hit first stops the run; -duration 0 means no time
// limit). -start offsets the seed range so successive campaigns explore
// fresh instances.
//
// On divergence the witness is shrunk and written to -out (default
// fuzzdiff-repros/) as <oracle>-seed<N>.txt, containing the oracle name,
// the original and shrunk renderings, and the divergence detail; the
// campaign then continues with the next seed, so one bug does not hide
// another. -trace streams observability events (fixpoints, groundings,
// translations) of the failing instance's re-run as JSON lines next to the
// repro, giving the engine-level trace of the disagreement.
//
// -inject plants a deliberate fault (see diffcheck.ParseFault; currently
// none or drop-max) in one engine of the expr-seminaive pair. A campaign
// with -inject drop-max must fail — it is the self-test proving the
// harness catches and shrinks real bugs, exercised by this command's tests.
//
// Exit status: 0 for a clean campaign, 1 when any oracle diverged, 2 for
// usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"algrec/internal/diffcheck"
	"algrec/internal/obsv"
	"algrec/internal/randgen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fuzzdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	oracle := fs.String("oracle", "", "run a single oracle by name (default: the whole matrix)")
	seeds := fs.Int64("seeds", 200, "instances to try per oracle")
	start := fs.Int64("start", 0, "first seed of the range")
	size := fs.Int("size", 0, "fixed instance size budget 1..8 (default: cycle 1..4)")
	duration := fs.Duration("duration", 0, "wall-clock bound for the whole campaign (0 = none)")
	out := fs.String("out", "fuzzdiff-repros", "directory for shrunk repro files")
	inject := fs.String("inject", "none", "plant a deliberate fault: none or drop-max")
	trace := fs.String("trace", "", "write observability JSONL of failing re-runs to this file")
	verbose := fs.Bool("v", false, "report per-oracle progress")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fault, err := diffcheck.ParseFault(*inject)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	defer diffcheck.InjectFault(fault)()

	oracles := diffcheck.Oracles
	if *oracle != "" {
		o, ok := diffcheck.ByName(*oracle)
		if !ok {
			fmt.Fprintf(stderr, "fuzzdiff: unknown oracle %q; known oracles:\n", *oracle)
			for _, o := range diffcheck.Oracles {
				fmt.Fprintf(stderr, "  %-18s %s\n", o.Name, o.Doc)
			}
			return 2
		}
		oracles = []*diffcheck.Oracle{o}
	}

	var traceW io.Writer
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		defer f.Close()
		traceW = f
	}

	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	failures, tried := 0, 0
	for _, o := range oracles {
		divergences := 0
		for seed := *start; seed < *start+*seeds; seed++ {
			if !deadline.IsZero() && time.Now().After(deadline) {
				fmt.Fprintf(stdout, "fuzzdiff: campaign time limit reached after %d instances\n", tried)
				goto done
			}
			cfg := randgen.Config{Size: *size}
			if *size == 0 {
				cfg.Size = 1 + int(seed%4)
			}
			in := diffcheck.Generate(o, randgen.New(seed, cfg))
			tried++
			err := in.Check()
			if err == nil {
				continue
			}
			divergences++
			failures++
			if reportErr := report(stdout, *out, traceW, o, seed, in, err); reportErr != nil {
				fmt.Fprintln(stderr, reportErr)
				return 2
			}
		}
		if *verbose {
			fmt.Fprintf(stdout, "%-18s %d seeds, %d divergences\n", o.Name, *seeds, divergences)
		}
	}
done:
	if failures > 0 {
		fmt.Fprintf(stdout, "fuzzdiff: %d divergence(s) across %d instances; repros in %s\n", failures, tried, *out)
		return 1
	}
	fmt.Fprintf(stdout, "fuzzdiff: %d instances, all oracles agree\n", tried)
	return 0
}

// report shrinks a diverging instance and writes the repro file; with a
// trace writer it re-runs the shrunk check under a JSONL collector so the
// repro comes with its engine-level event stream.
func report(stdout io.Writer, outDir string, traceW io.Writer, o *diffcheck.Oracle, seed int64, in *diffcheck.Instance, err error) error {
	small := in.Shrink()
	smallErr := small.Check()
	if traceW != nil {
		// Trace the original as well as the shrunk witness: shrinking can
		// strip the structure (an IFP, a grounding) whose events explain
		// where the engines diverged.
		prev := obsv.Default()
		obsv.SetDefault(obsv.Multi(prev, obsv.NewJSONL(traceW)))
		_ = in.Check()
		smallErr = small.Check()
		obsv.SetDefault(prev)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(outDir, fmt.Sprintf("%s-seed%d.txt", o.Name, seed))
	body := fmt.Sprintf("oracle: %s\n%s\nseed: %d\n\ndivergence:\n%v\n\nshrunk witness (size %d):\n%s\noriginal instance (size %d):\n%s",
		o.Name, o.Doc, seed, smallErr, small.Size(), small.Render(), in.Size(), in.Render())
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "FAIL %s seed %d: %v\n  shrunk to %d atoms, repro written to %s\n",
		o.Name, seed, err, small.Size(), path)
	return nil
}
