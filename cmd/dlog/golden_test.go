package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"algrec/internal/algebra"
	"algrec/internal/value"
)

// goldenCases are the committed example workloads whose stdout is pinned
// bit-for-bit. Regenerate with:
//
//	go build -o /tmp/dlog ./cmd/dlog && /tmp/dlog <flags> <input> > <golden>
var goldenCases = []struct {
	golden string
	args   []string
}{
	{"tc.minimal.golden", []string{"-semantics", "minimal", "testdata/tc.dlog"}},
	{"tc.valid.golden", []string{"testdata/tc.dlog"}},
	{"bom.stratified.golden", []string{"-semantics", "stratified", "testdata/bom.dlog"}},
	{"bom.missing.wellfounded.golden", []string{"-semantics", "wellfounded", "-pred", "missing", "testdata/bom.dlog"}},
	{"wingame.valid.golden", []string{"-undef", "testdata/wingame.dlog"}},
	{"wingame.stable.golden", []string{"-semantics", "stable", "testdata/wingame.dlog"}},
	{"wingame.inflationary.golden", []string{"-semantics", "inflationary", "testdata/wingame.dlog"}},
}

func runGolden(t *testing.T) {
	t.Helper()
	for _, tc := range goldenCases {
		t.Run(tc.golden, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			if err := run(tc.args, strings.NewReader(""), &out); err != nil {
				t.Fatal(err)
			}
			if out.String() != string(want) {
				t.Errorf("output diverged from %s:\n got:\n%s\nwant:\n%s", tc.golden, out.String(), want)
			}
		})
	}
}

// TestGolden pins the CLI's stdout bit-for-bit on the committed example
// workloads: the shared pipeline extraction (internal/query) must not change
// a single byte of output.
func TestGolden(t *testing.T) { runGolden(t) }

// TestGoldenNoIntern replays the same golden cases with hash-consed
// interning disabled (the cmd/bench -nointern ablation): the string-keyed
// representation must reproduce every byte of output.
func TestGoldenNoIntern(t *testing.T) {
	was := value.SetInterning(false)
	defer value.SetInterning(was)
	runGolden(t)
}

// TestGoldenNoStreaming replays the same golden cases with the streaming
// execution runtime disabled (the cmd/bench -nostreaming ablation): full
// operator-by-operator materialization must reproduce every byte of output.
func TestGoldenNoStreaming(t *testing.T) {
	was := algebra.DefaultBudget.NoStreaming
	algebra.DefaultBudget.NoStreaming = true
	defer func() { algebra.DefaultBudget.NoStreaming = was }()
	runGolden(t)
}

// TestGoldenNoIDSets replays the same golden cases with the ID-native delta
// fixpoint kernels disabled (the cmd/bench -noidsets ablation): the
// value-space delta rounds must reproduce every byte of output.
func TestGoldenNoIDSets(t *testing.T) {
	was := algebra.DefaultBudget.NoIDSets
	algebra.DefaultBudget.NoIDSets = true
	defer func() { algebra.DefaultBudget.NoIDSets = was }()
	runGolden(t)
}
