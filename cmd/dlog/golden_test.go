package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGolden pins the CLI's stdout bit-for-bit on the committed example
// workloads: the shared pipeline extraction (internal/query) must not change
// a single byte of output. Regenerate with:
//
//	go build -o /tmp/dlog ./cmd/dlog && /tmp/dlog <flags> <input> > <golden>
func TestGolden(t *testing.T) {
	cases := []struct {
		golden string
		args   []string
	}{
		{"tc.minimal.golden", []string{"-semantics", "minimal", "testdata/tc.dlog"}},
		{"tc.valid.golden", []string{"testdata/tc.dlog"}},
		{"bom.stratified.golden", []string{"-semantics", "stratified", "testdata/bom.dlog"}},
		{"bom.missing.wellfounded.golden", []string{"-semantics", "wellfounded", "-pred", "missing", "testdata/bom.dlog"}},
		{"wingame.valid.golden", []string{"-undef", "testdata/wingame.dlog"}},
		{"wingame.stable.golden", []string{"-semantics", "stable", "testdata/wingame.dlog"}},
		{"wingame.inflationary.golden", []string{"-semantics", "inflationary", "testdata/wingame.dlog"}},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			if err := run(tc.args, strings.NewReader(""), &out); err != nil {
				t.Fatal(err)
			}
			if out.String() != string(want) {
				t.Errorf("output diverged from %s:\n got:\n%s\nwant:\n%s", tc.golden, out.String(), want)
			}
		})
	}
}
