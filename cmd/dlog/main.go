// Command dlog evaluates a deductive program under a chosen semantics and
// prints the resulting relations.
//
// Usage:
//
//	dlog [-semantics valid|wellfounded|stable|inflationary|stratified|minimal]
//	     [-pred name] [-undef] [file]
//
// The program is read from the file argument or standard input. With
// -semantics stable, every stable model is printed. By default all derived
// predicates are printed; -pred restricts the output, and -undef also lists
// atoms whose truth is undefined in three-valued semantics.
//
// Example (the paper's Example 3 game on a cyclic MOVE):
//
//	$ echo 'move(a,a). move(a,b). win(X) :- move(X,Y), not win(Y).' | dlog -undef
//	win(a).
//	% undefined: (none)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"algrec/internal/datalog"
	"algrec/internal/datalog/ground"
	"algrec/internal/semantics"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dlog:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("dlog", flag.ContinueOnError)
	semName := fs.String("semantics", "valid", "evaluation semantics: minimal, stratified, inflationary, wellfounded, valid, or stable")
	pred := fs.String("pred", "", "print only this predicate")
	undef := fs.Bool("undef", false, "also print undefined atoms")
	maxUndef := fs.Int("max-undef", 24, "stable: maximum residual size to search")
	if err := fs.Parse(args); err != nil {
		return err
	}

	src, err := readInput(fs.Arg(0), stdin)
	if err != nil {
		return err
	}
	p, err := datalog.ParseProgram(src)
	if err != nil {
		return err
	}

	if *semName == "stable" {
		g, err := ground.Ground(p, ground.Budget{})
		if err != nil {
			return err
		}
		models, err := semantics.NewEngine(g).StableModels(*maxUndef)
		if err != nil {
			return err
		}
		if len(models) == 0 {
			fmt.Fprintln(stdout, "% no stable models")
			return nil
		}
		for i, m := range models {
			fmt.Fprintf(stdout, "%% stable model %d of %d\n", i+1, len(models))
			printInterp(stdout, p, m, *pred, false)
		}
		return nil
	}

	sem, err := semantics.ParseSemantics(*semName)
	if err != nil {
		return err
	}
	in, err := semantics.Eval(p, sem, ground.Budget{})
	if err != nil {
		return err
	}
	printInterp(stdout, p, in, *pred, *undef)
	return nil
}

func printInterp(w io.Writer, p *datalog.Program, in *semantics.Interp, pred string, undef bool) {
	preds := p.IDB()
	if pred != "" {
		preds = []string{pred}
	}
	sort.Strings(preds)
	for _, q := range preds {
		for _, f := range in.TrueFacts(q) {
			fmt.Fprintln(w, f.Key()+".")
		}
	}
	if undef {
		any := false
		for _, q := range preds {
			for _, f := range in.UndefFacts(q) {
				fmt.Fprintln(w, "% undefined: "+f.Key())
				any = true
			}
		}
		if !any {
			fmt.Fprintln(w, "% undefined: (none)")
		}
	}
}

func readInput(path string, stdin io.Reader) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
