// Command dlog evaluates a deductive program under a chosen semantics and
// prints the resulting relations.
//
// Usage:
//
//	dlog [-semantics valid|wellfounded|stable|inflationary|stratified|minimal]
//	     [-pred name] [-undef] [file]
//
// The program is read from the file argument or standard input. With
// -semantics stable, every stable model is printed. By default all derived
// predicates are printed; -pred restricts the output, and -undef also lists
// atoms whose truth is undefined in three-valued semantics.
//
// Example (the paper's Example 3 game on a cyclic MOVE):
//
//	$ echo 'move(a,a). move(a,b). win(X) :- move(X,Y), not win(Y).' | dlog -undef
//	win(a).
//	% undefined: (none)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"algrec/internal/query"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dlog:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("dlog", flag.ContinueOnError)
	semName := fs.String("semantics", "valid", "evaluation semantics: minimal, stratified, inflationary, wellfounded, valid, or stable")
	pred := fs.String("pred", "", "print only this predicate")
	undef := fs.Bool("undef", false, "also print undefined atoms")
	maxUndef := fs.Int("max-undef", 24, "stable: maximum residual size to search")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sem, err := query.ParseSemantics(*semName)
	if err != nil {
		return err
	}

	src, err := query.ReadInput(fs.Arg(0), stdin)
	if err != nil {
		return err
	}
	plan, err := query.Compile(query.LangDatalog, sem, src)
	if err != nil {
		return err
	}
	out, err := query.Execute(plan, nil, query.Options{MaxUndef: *maxUndef})
	if err != nil {
		return err
	}
	query.WriteDlogText(stdout, out, *pred, *undef)
	return nil
}
