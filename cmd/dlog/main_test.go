package main

import (
	"strings"
	"testing"
)

func runDlog(t *testing.T, args []string, input string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(args, strings.NewReader(input), &out)
	return out.String(), err
}

func TestRunValid(t *testing.T) {
	out, err := runDlog(t, []string{"-undef"}, `
move(a, a). move(a, b).
win(X) :- move(X, Y), not win(Y).
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "win(a).") {
		t.Errorf("missing win(a) in:\n%s", out)
	}
	if !strings.Contains(out, "% undefined: (none)") {
		t.Errorf("undefined marker missing in:\n%s", out)
	}
}

func TestRunUndefined(t *testing.T) {
	out, err := runDlog(t, []string{"-undef"}, "move(a, a).\nwin(X) :- move(X, Y), not win(Y).\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "% undefined: win(a)") {
		t.Errorf("undefined atom not reported:\n%s", out)
	}
}

func TestRunStable(t *testing.T) {
	out, err := runDlog(t, []string{"-semantics", "stable"},
		"move(a, b). move(b, a).\nwin(X) :- move(X, Y), not win(Y).\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "stable model 1 of 2") || !strings.Contains(out, "stable model 2 of 2") {
		t.Errorf("expected two stable models:\n%s", out)
	}
	// no stable models case
	out2, err := runDlog(t, []string{"-semantics", "stable"}, "p :- not p.\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2, "% no stable models") {
		t.Errorf("odd loop output:\n%s", out2)
	}
}

func TestRunPredFilterAndSemantics(t *testing.T) {
	src := "e(1, 2).\ntc(X, Y) :- e(X, Y).\nother(X) :- e(X, Y).\n"
	out, err := runDlog(t, []string{"-pred", "tc", "-semantics", "minimal"}, src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tc(1, 2).") || strings.Contains(out, "other") {
		t.Errorf("pred filter failed:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := runDlog(t, nil, "p(X :- q."); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := runDlog(t, []string{"-semantics", "nope"}, "p.\n"); err == nil {
		t.Error("unknown semantics not surfaced")
	}
	if _, err := runDlog(t, []string{"-semantics", "stratified"}, "move(a, a).\nwin(X) :- move(X, Y), not win(Y).\n"); err == nil {
		t.Error("stratification error not surfaced")
	}
	if _, err := runDlog(t, []string{"nonexistent-file.dl"}, ""); err == nil {
		t.Error("missing file not surfaced")
	}
}
