# Tier-1 verification: everything CI gates on.
.PHONY: all check race bench test vet build clean

all: check

# check is the tier-1 job: build, vet, full test suite.
check: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# race exercises the packages with internal parallelism (the StableModels
# worker pool and the sharded experiment runner) under the race detector.
race:
	go test -race ./internal/semantics ./internal/expt

# bench runs the full benchmark suite once per target (see also cmd/bench).
bench:
	go test -run XXX -bench . -benchtime 1x -timeout 1200s

clean:
	go clean ./...
