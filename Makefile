# Tier-1 verification: everything CI gates on.
.PHONY: all check race bench bench-delta bench-intern bench-stream bench-idsets bench-ivm bench-storage bench-check bench-gates fuzz-smoke test test-server test-storage serve vet lint docs-fresh build clean

all: check

# check is the tier-1 job: build, vet, full test suite.
check: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# test-server runs just the serving stack: the query compiler shared by the
# CLIs and the daemon, the HTTP service (e2e matrix, singleflight, eviction,
# cancellation, drain, fact mutations, subscription streams) and the
# incremental maintenance engine behind the subscriptions, plus the three
# front-ends' golden tests — under the race detector, twice, because the
# subscription writer/maintainer handoff is where races would live.
test-server:
	go test -race -count=2 ./internal/query ./internal/server ./internal/storage ./internal/ivm ./cmd/algrecd ./cmd/algq ./cmd/dlog

# test-storage runs the pluggable-storage engine's own suite — the
# backend-agnostic conformance tests against both backends, the disk
# format's property tests, the crash-recovery fault-injection matrix —
# plus the serving-layer integration: disk-backed end-to-end differential
# tests, snapshot/restore, and the copy-on-write isolation test, all under
# the race detector twice.
test-storage:
	go test -race -count=2 ./internal/storage
	go test -race -count=2 -run 'TestDiskServer|TestSnapshotRestore|TestConcurrentReadersDuringBulkLoad' ./internal/server

# serve starts the query daemon on the default address (:8372) with the
# bundled example graph registered as database "g". See docs/server.md.
serve:
	go run ./cmd/algrecd -db g=internal/server/testdata/graph.alg

# lint gates documentation: every package needs a package doc comment, and
# the theorem-bearing packages (semantics, translate) plus the engine
# packages (algebra and its stream iterator layer, core) must document every
# exported declaration. doccheck is stdlib-only (tools/doccheck).
lint: vet
	go run ./tools/doccheck -strict internal/semantics,internal/translate,internal/algebra,internal/algebra/stream,internal/core,internal/randgen,internal/diffcheck,internal/query,internal/server,internal/ivm,internal/storage,internal/value/intern,internal/value/idset .

# docs-fresh regenerates EXPERIMENTS.md's tables from the committed record
# (internal/expt/recorded/run.json) and fails if the committed document was
# stale — the CI freshness gate.
docs-fresh:
	go generate ./internal/expt
	git diff --exit-code EXPERIMENTS.md

# race exercises the packages with internal parallelism (the StableModels
# worker pool, the sharded experiment runner, the core scheduler's stratum
# worker pool, the observability collectors shared across all of them, and
# the query server's plan cache — singleflight compilation, LRU eviction
# and graceful drain are each hammered by concurrent clients in its tests)
# under the race detector; diffcheck rides along because its clean-sweep
# test drives every engine from parallel subtests.
race:
	go test -race ./internal/semantics ./internal/expt ./internal/obsv ./internal/core ./internal/algebra ./internal/algebra/stream ./internal/randgen ./internal/diffcheck ./internal/server ./internal/ivm ./internal/query ./internal/storage ./internal/value ./internal/value/intern ./internal/value/idset

# bench runs the full benchmark suite once per target (see also cmd/bench).
bench:
	go test -run XXX -bench . -benchtime 1x -timeout 1200s

# bench-delta measures just the semi-naive delta fixpoint engine: P6
# (naive vs semi-naive IFP) and the A4 ablation.
bench-delta:
	go test -run XXX -bench 'BenchmarkP6DeltaIFP|BenchmarkA4SemiNaiveAblation' -benchtime 1x .

# bench-check reruns the experiment suite at the baseline's scale and
# compares the fresh record against the committed BENCH_baseline.json
# (tools/benchcheck): advisory perf-regression gate, generous tolerance.
# Refresh the baseline with: go run ./cmd/bench -scale 1 -json BENCH_baseline.json
bench-check:
	@tmp=$$(mktemp -d) && \
	go run ./cmd/bench -scale 1 -json $$tmp/current.json >/dev/null && \
	go run ./tools/benchcheck -baseline BENCH_baseline.json $$tmp/current.json; \
	rc=$$?; rm -rf $$tmp; exit $$rc

# bench-gates reruns only the gated ablation suites and enforces the
# -gates speedup floors (default P10 ifpTCChain >= 2x, P11 ivmInsertChain
# >= 5x, P12 storageMemServe(96) >= 0.95x — the memory backend may cost
# the serving path at most 5% over direct evaluation). Speedups are
# within-run A/B ratios, so machine noise cancels and this gate can block
# merges where the absolute-wall bench-check stays advisory.
bench-gates:
	@tmp=$$(mktemp -d) && \
	go run ./cmd/bench -only P10,P11,P12 -json $$tmp/current.json >/dev/null && \
	go run ./tools/benchcheck -gatesonly $$tmp/current.json; \
	rc=$$?; rm -rf $$tmp; exit $$rc

# bench-storage reruns just the pluggable-storage experiment (P12): the
# serving path against the memory and disk backends plus the bulk-load
# round-trip, printed as a table.
bench-storage:
	go run ./cmd/bench -only P12

# fuzz-smoke gives every differential oracle (internal/diffcheck) a short
# coverage-guided run; CI runs the same targets per-oracle in a matrix, and
# plain `go test` already replays the committed corpora.
fuzz-smoke:
	@for t in ExprSemiNaive ExprIFPElim CoreValid CoreInflationary CoreWellFounded \
	          DlogTheorem62 DlogTheorem43 DlogMinimal DlogStratified DlogStable \
	          ExprIntern DlogIntern ExprStream DlogStream ExprIDSet DlogIDSet \
	          DlogIVM DlogStorage; do \
		go test ./internal/diffcheck -run '^$$' -fuzz "^Fuzz$$t\$$" -fuzztime 10s || exit 1; \
	done

# bench-intern measures the interning layer alone: the interner's hit/miss
# and membership micro-benchmarks plus the P8 macro A/B (interning on vs the
# -nointern string-keyed baseline).
bench-intern:
	go test ./internal/value/intern -run XXX -bench . -benchmem
	go run ./cmd/bench -only P8

# bench-stream measures the streaming execution runtime alone: the P9 macro
# A/B (lazy pushdown/hash-join pipelines vs the -nostreaming materialized
# baseline, per-call Budget switch).
bench-stream:
	go run ./cmd/bench -only P9

# bench-idsets measures the ID-native delta fixpoint kernels alone: the P10
# macro A/B (sorted-ID galloping kernels + per-fixpoint join index vs the
# -noidsets value-space rounds, per-call Budget switch).
bench-idsets:
	go run ./cmd/bench -only P10

# bench-ivm measures incremental view maintenance alone: the P11 macro A/B
# (counting/DRed delta maintenance vs the -noivm from-scratch recompute
# baseline, per-view Budget switch).
bench-ivm:
	go run ./cmd/bench -only P11

clean:
	go clean ./...
