# Tier-1 verification: everything CI gates on.
.PHONY: all check race bench bench-delta test vet lint docs-fresh build clean

all: check

# check is the tier-1 job: build, vet, full test suite.
check: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# lint gates documentation: every package needs a package doc comment, and
# the theorem-bearing packages (semantics, translate) plus the delta-engine
# packages (algebra, core) must document every exported declaration.
# doccheck is stdlib-only (tools/doccheck).
lint: vet
	go run ./tools/doccheck -strict internal/semantics,internal/translate,internal/algebra,internal/core .

# docs-fresh regenerates EXPERIMENTS.md's tables from the committed record
# (internal/expt/recorded/run.json) and fails if the committed document was
# stale — the CI freshness gate.
docs-fresh:
	go generate ./internal/expt
	git diff --exit-code EXPERIMENTS.md

# race exercises the packages with internal parallelism (the StableModels
# worker pool, the sharded experiment runner, the core scheduler's stratum
# worker pool, and the observability collectors shared across all of them)
# under the race detector.
race:
	go test -race ./internal/semantics ./internal/expt ./internal/obsv ./internal/core ./internal/algebra

# bench runs the full benchmark suite once per target (see also cmd/bench).
bench:
	go test -run XXX -bench . -benchtime 1x -timeout 1200s

# bench-delta measures just the semi-naive delta fixpoint engine: P6
# (naive vs semi-naive IFP) and the A4 ablation.
bench-delta:
	go test -run XXX -bench 'BenchmarkP6DeltaIFP|BenchmarkA4SemiNaiveAblation' -benchtime 1x .

clean:
	go clean ./...
