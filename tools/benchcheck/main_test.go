package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"algrec/internal/expt"
)

// writeRecord marshals a record into dir and returns its path.
func writeRecord(t *testing.T, dir, name string, rec *expt.Record) string {
	t.Helper()
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func suite(id string, ok bool, wallNS int64) expt.RecordSuite {
	return expt.RecordSuite{ID: id, Title: "experiment " + id, OK: ok, WallNS: wallNS}
}

func TestWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeRecord(t, dir, "base.json", &expt.Record{Scale: 1,
		Suites: []expt.RecordSuite{suite("E1", true, 100), suite("E2", true, 200)}})
	cur := writeRecord(t, dir, "cur.json", &expt.Record{Scale: 1,
		Suites: []expt.RecordSuite{suite("E1", true, 250), suite("E2", true, 90)}})
	var out, errb strings.Builder
	if code := run([]string{"-baseline", base, "-gates", "", cur}, &out, &errb, false); code != 0 {
		t.Fatalf("want exit 0, got %d:\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "within 3.0x") {
		t.Errorf("missing summary:\n%s", out.String())
	}
}

func TestRegressionKinds(t *testing.T) {
	dir := t.TempDir()
	base := writeRecord(t, dir, "base.json", &expt.Record{Scale: 1, Suites: []expt.RecordSuite{
		suite("SLOW", true, 100), suite("BROKE", true, 100), suite("GONE", true, 100)}})
	cur := writeRecord(t, dir, "cur.json", &expt.Record{Scale: 1, Suites: []expt.RecordSuite{
		suite("SLOW", true, 1000), suite("BROKE", false, 100)}})
	var out, errb strings.Builder
	if code := run([]string{"-baseline", base, "-gates", "", cur}, &out, &errb, false); code != 1 {
		t.Fatalf("want exit 1, got %d:\n%s%s", code, out.String(), errb.String())
	}
	for _, want := range []string{"SLOW", "10.0x", "BROKE", "stopped passing", "GONE", "missing", "3 regression(s)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestGitHubAnnotations(t *testing.T) {
	dir := t.TempDir()
	base := writeRecord(t, dir, "base.json", &expt.Record{Scale: 1,
		Suites: []expt.RecordSuite{suite("E1", true, 100)}})
	cur := writeRecord(t, dir, "cur.json", &expt.Record{Scale: 1,
		Suites: []expt.RecordSuite{suite("E1", true, 5000)}})
	var out, errb strings.Builder
	if code := run([]string{"-baseline", base, "-gates", "", cur}, &out, &errb, true); code != 1 {
		t.Fatalf("want exit 1, got %d", code)
	}
	if !strings.Contains(out.String(), "::warning title=bench regression::") {
		t.Errorf("missing workflow annotation:\n%s", out.String())
	}
}

// gatedSuite builds a P10-shaped ablation suite with the given speedup rows.
func gatedSuite(id string, rows ...[]string) expt.RecordSuite {
	return expt.RecordSuite{ID: id, Title: "experiment " + id, OK: true, WallNS: 100,
		Header: []string{"workload", "size", "noidsets", "idsets", "speedup", "agree"},
		Rows:   rows}
}

// p11Suite is a passing P11 ablation suite, satisfying the default
// ivmInsertChain gate so tests can focus on the P10 rows.
func p11Suite() expt.RecordSuite {
	return expt.RecordSuite{ID: "P11", Title: "experiment P11", OK: true, WallNS: 100,
		Header: []string{"workload", "size", "noivm", "ivm", "speedup", "agree"},
		Rows:   [][]string{{"ivmInsertChain(128)", "10", "1ms", "1ms", "50.00x", "yes"}}}
}

// p12Suite is a passing P12 storage suite, satisfying the default
// storageMemServe gate so tests can focus on the P10 rows.
func p12Suite() expt.RecordSuite {
	return expt.RecordSuite{ID: "P12", Title: "experiment P12", OK: true, WallNS: 100,
		Header: []string{"workload", "n", "base", "with storage", "speedup", "agree"},
		Rows:   [][]string{{"storageMemServe(96)", "96", "1ms", "1ms", "1.00x", "yes"}}}
}

func TestSpeedupGates(t *testing.T) {
	dir := t.TempDir()
	row := func(name, sp string) []string { return []string{name, "10", "1ms", "1ms", sp, "yes"} }
	base := writeRecord(t, dir, "base.json", &expt.Record{Scale: 1,
		Suites: []expt.RecordSuite{gatedSuite("P10", row("ifpTCChain(128)", "5.00x")), p11Suite(), p12Suite()}})

	// Current run holds the floor: exit 0.
	ok := writeRecord(t, dir, "ok.json", &expt.Record{Scale: 1, Suites: []expt.RecordSuite{
		gatedSuite("P10", row("ifpTCChain(128)", "2.40x"), row("dlogWinGame(128)", "0.90x")), p11Suite(), p12Suite()}})
	var out, errb strings.Builder
	if code := run([]string{"-baseline", base, ok}, &out, &errb, false); code != 0 {
		t.Fatalf("want exit 0, got %d:\n%s%s", code, out.String(), errb.String())
	}

	// A gated row under the floor is a regression even though every wall is
	// fine; ungated rows (dlogWinGame) stay advisory.
	out.Reset()
	slow := writeRecord(t, dir, "slow.json", &expt.Record{Scale: 1, Suites: []expt.RecordSuite{
		gatedSuite("P10", row("ifpTCChain(128)", "1.10x"), row("dlogWinGame(128)", "0.50x")), p11Suite(), p12Suite()}})
	if code := run([]string{"-baseline", base, slow}, &out, &errb, false); code != 1 {
		t.Fatalf("want exit 1, got %d:\n%s", code, out.String())
	}
	for _, want := range []string{"ifpTCChain(128)", "1.10x", "2.00x floor"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "dlogWinGame") {
		t.Errorf("ungated row reported:\n%s", out.String())
	}

	// Gated rows disappearing (or the whole suite) is a regression too.
	out.Reset()
	gone := writeRecord(t, dir, "gone.json", &expt.Record{Scale: 1, Suites: []expt.RecordSuite{
		gatedSuite("P10", row("dlogWinGame(128)", "0.90x")), p11Suite(), p12Suite()}})
	if code := run([]string{"-baseline", base, gone}, &out, &errb, false); code != 1 {
		t.Fatalf("want exit 1, got %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "matched no ifpTCChain rows") {
		t.Errorf("missing no-rows regression:\n%s", out.String())
	}

	// A malformed gate spec is a usage error, not a silent pass.
	out.Reset()
	if code := run([]string{"-baseline", base, "-gates", "P10:only-two", ok}, &out, &errb, false); code != 2 {
		t.Errorf("bad gate: want exit 2, got %d", code)
	}
}

func TestGatesOnly(t *testing.T) {
	dir := t.TempDir()
	row := func(name, sp string) []string { return []string{name, "10", "1ms", "1ms", sp, "yes"} }

	// -gatesonly never touches the baseline: a record holding only the gated
	// suite passes even though every other suite is "missing" and no baseline
	// file exists at the default path.
	ok := writeRecord(t, dir, "ok.json", &expt.Record{Scale: 1, Suites: []expt.RecordSuite{
		gatedSuite("P10", row("ifpTCChain(128)", "3.10x")), p11Suite(), p12Suite()}})
	var out, errb strings.Builder
	if code := run([]string{"-gatesonly", "-baseline", filepath.Join(dir, "nope.json"), ok}, &out, &errb, false); code != 0 {
		t.Fatalf("want exit 0, got %d:\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "all speedup gates hold") {
		t.Errorf("missing summary:\n%s", out.String())
	}

	// Floor violations still fail in gates-only mode.
	out.Reset()
	slow := writeRecord(t, dir, "slow.json", &expt.Record{Scale: 1, Suites: []expt.RecordSuite{
		gatedSuite("P10", row("ifpTCChain(128)", "1.30x")), p11Suite(), p12Suite()}})
	if code := run([]string{"-gatesonly", slow}, &out, &errb, false); code != 1 {
		t.Fatalf("want exit 1, got %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "1 gate violation(s)") {
		t.Errorf("missing violation summary:\n%s", out.String())
	}
}

func TestUsageAndMismatch(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb, false); code != 2 {
		t.Errorf("no args: want exit 2, got %d", code)
	}
	dir := t.TempDir()
	base := writeRecord(t, dir, "base.json", &expt.Record{Scale: 1})
	cur := writeRecord(t, dir, "cur.json", &expt.Record{Scale: 4})
	if code := run([]string{"-baseline", base, "-gates", "", cur}, &out, &errb, false); code != 2 {
		t.Errorf("scale mismatch: want exit 2, got %d", code)
	}
	if code := run([]string{"-baseline", filepath.Join(dir, "nope.json"), cur}, &out, &errb, false); code != 2 {
		t.Errorf("missing baseline: want exit 2, got %d", code)
	}
}
