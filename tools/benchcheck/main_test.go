package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"algrec/internal/expt"
)

// writeRecord marshals a record into dir and returns its path.
func writeRecord(t *testing.T, dir, name string, rec *expt.Record) string {
	t.Helper()
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func suite(id string, ok bool, wallNS int64) expt.RecordSuite {
	return expt.RecordSuite{ID: id, Title: "experiment " + id, OK: ok, WallNS: wallNS}
}

func TestWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeRecord(t, dir, "base.json", &expt.Record{Scale: 1,
		Suites: []expt.RecordSuite{suite("E1", true, 100), suite("E2", true, 200)}})
	cur := writeRecord(t, dir, "cur.json", &expt.Record{Scale: 1,
		Suites: []expt.RecordSuite{suite("E1", true, 250), suite("E2", true, 90)}})
	var out, errb strings.Builder
	if code := run([]string{"-baseline", base, cur}, &out, &errb, false); code != 0 {
		t.Fatalf("want exit 0, got %d:\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "within 3.0x") {
		t.Errorf("missing summary:\n%s", out.String())
	}
}

func TestRegressionKinds(t *testing.T) {
	dir := t.TempDir()
	base := writeRecord(t, dir, "base.json", &expt.Record{Scale: 1, Suites: []expt.RecordSuite{
		suite("SLOW", true, 100), suite("BROKE", true, 100), suite("GONE", true, 100)}})
	cur := writeRecord(t, dir, "cur.json", &expt.Record{Scale: 1, Suites: []expt.RecordSuite{
		suite("SLOW", true, 1000), suite("BROKE", false, 100)}})
	var out, errb strings.Builder
	if code := run([]string{"-baseline", base, cur}, &out, &errb, false); code != 1 {
		t.Fatalf("want exit 1, got %d:\n%s%s", code, out.String(), errb.String())
	}
	for _, want := range []string{"SLOW", "10.0x", "BROKE", "stopped passing", "GONE", "missing", "3 regression(s)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestGitHubAnnotations(t *testing.T) {
	dir := t.TempDir()
	base := writeRecord(t, dir, "base.json", &expt.Record{Scale: 1,
		Suites: []expt.RecordSuite{suite("E1", true, 100)}})
	cur := writeRecord(t, dir, "cur.json", &expt.Record{Scale: 1,
		Suites: []expt.RecordSuite{suite("E1", true, 5000)}})
	var out, errb strings.Builder
	if code := run([]string{"-baseline", base, cur}, &out, &errb, true); code != 1 {
		t.Fatalf("want exit 1, got %d", code)
	}
	if !strings.Contains(out.String(), "::warning title=bench regression::") {
		t.Errorf("missing workflow annotation:\n%s", out.String())
	}
}

func TestUsageAndMismatch(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb, false); code != 2 {
		t.Errorf("no args: want exit 2, got %d", code)
	}
	dir := t.TempDir()
	base := writeRecord(t, dir, "base.json", &expt.Record{Scale: 1})
	cur := writeRecord(t, dir, "cur.json", &expt.Record{Scale: 4})
	if code := run([]string{"-baseline", base, cur}, &out, &errb, false); code != 2 {
		t.Errorf("scale mismatch: want exit 2, got %d", code)
	}
	if code := run([]string{"-baseline", filepath.Join(dir, "nope.json"), cur}, &out, &errb, false); code != 2 {
		t.Errorf("missing baseline: want exit 2, got %d", code)
	}
}
