// Command benchcheck compares a fresh cmd/bench -json record against the
// committed baseline (BENCH_baseline.json) and reports per-experiment
// regressions: a suite that stopped passing, disappeared from the run, or
// slowed down past the tolerance factor. Wall-clock on shared CI runners is
// noisy, so the default tolerance is generous (3x) and the CI job that runs
// this check is advisory (continue-on-error) — the annotations surface the
// trend without blocking a merge on a noisy neighbor.
//
// Speedup gates are the exception: -gates (default
// "P10:ifpTCChain:2.0,P11:ivmInsertChain:5.0")
// names rows of A/B ablation tables whose measured speedup column must stay
// above a floor in the CURRENT run. A speedup is a within-run ratio — both
// sides share the runner, so machine noise largely cancels — which is what
// makes these rows gateable where absolute walls are only advisory. A gated
// row falling under its floor (or disappearing) is a regression.
//
// Usage:
//
//	benchcheck [-baseline BENCH_baseline.json] [-tol 3.0]
//	           [-gates suite:rowprefix:minspeedup,...] [-gatesonly] current.json
//
// -gatesonly skips the baseline comparison entirely and enforces just the
// speedup floors, so a record holding only the gated suites (cmd/bench
// -only P10,P11) is enough — that is the blocking bench-gates CI job.
//
// Under GitHub Actions (GITHUB_ACTIONS=true) regressions are emitted as
// ::warning workflow annotations; elsewhere as plain lines. Exit status: 0
// when every suite is within tolerance, 1 on any regression, 2 on usage or
// read errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"algrec/internal/expt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, os.Getenv("GITHUB_ACTIONS") == "true"))
}

func run(args []string, stdout, stderr io.Writer, gh bool) int {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseline := fs.String("baseline", "BENCH_baseline.json", "committed baseline record")
	tol := fs.Float64("tol", 3.0, "wall-clock slowdown factor that counts as a regression")
	gates := fs.String("gates", "P10:ifpTCChain:2.0,P11:ivmInsertChain:5.0,P12:storageMemServe(96):0.95",
		"comma-separated suite:rowprefix:minspeedup floors the current run's speedup rows must meet (empty disables)")
	gatesOnly := fs.Bool("gatesonly", false,
		"check only the -gates floors, skipping the baseline wall comparison (the current record may then hold just the gated suites)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: benchcheck [-baseline path] [-tol factor] [-gates spec] [-gatesonly] current.json")
		return 2
	}
	cur, err := expt.LoadRecord(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchcheck:", err)
		return 2
	}
	warn := func(format, plain string, a ...any) {
		if gh {
			fmt.Fprintf(stdout, "::warning title=bench regression::"+format+"\n", a...)
		} else {
			fmt.Fprintf(stdout, plain+"\n", a...)
		}
	}
	curByID := map[string]expt.RecordSuite{}
	for _, s := range cur.Suites {
		curByID[s.ID] = s
	}
	if *gatesOnly {
		n, err := checkGates(*gates, curByID, warn)
		if err != nil {
			fmt.Fprintln(stderr, "benchcheck:", err)
			return 2
		}
		if n > 0 {
			fmt.Fprintf(stdout, "benchcheck: %d gate violation(s)\n", n)
			return 1
		}
		fmt.Fprintf(stdout, "benchcheck: all speedup gates hold (%s)\n", *gates)
		return 0
	}
	base, err := expt.LoadRecord(*baseline)
	if err != nil {
		fmt.Fprintln(stderr, "benchcheck:", err)
		return 2
	}
	if base.Scale != cur.Scale {
		fmt.Fprintf(stderr, "benchcheck: scale mismatch: baseline ran -scale %d, current -scale %d\n", base.Scale, cur.Scale)
		return 2
	}
	regressions := 0
	for _, b := range base.Suites {
		c, ok := curByID[b.ID]
		switch {
		case !ok:
			regressions++
			warn("%s (%s) missing from the current run",
				"REGRESSION %s (%s): missing from the current run", b.ID, b.Title)
		case b.OK && !c.OK:
			regressions++
			warn("%s (%s) stopped passing",
				"REGRESSION %s (%s): stopped passing", b.ID, b.Title)
		case b.WallNS > 0 && float64(c.WallNS) > *tol*float64(b.WallNS):
			regressions++
			ratio := float64(c.WallNS) / float64(b.WallNS)
			warn("%s (%s) wall %.1fx baseline (%v -> %v)",
				"REGRESSION %s (%s): wall %.1fx baseline (%v -> %v)",
				b.ID, b.Title, ratio,
				time.Duration(b.WallNS).Round(time.Millisecond),
				time.Duration(c.WallNS).Round(time.Millisecond))
		}
	}
	n, err := checkGates(*gates, curByID, warn)
	if err != nil {
		fmt.Fprintln(stderr, "benchcheck:", err)
		return 2
	}
	regressions += n
	if regressions > 0 {
		fmt.Fprintf(stdout, "benchcheck: %d regression(s) against %s (tolerance %.1fx)\n", regressions, *baseline, *tol)
		return 1
	}
	fmt.Fprintf(stdout, "benchcheck: %d suites within %.1fx of %s\n", len(base.Suites), *tol, *baseline)
	return 0
}

// checkGates enforces the -gates speedup floors against the current record
// and returns the number of violated gates. Each gate is suite:rowprefix:min;
// every row of that suite whose first cell starts with the prefix must have a
// speedup column at or above min, and at least one such row must exist.
func checkGates(spec string, curByID map[string]expt.RecordSuite, warn func(format, plain string, a ...any)) (int, error) {
	if spec == "" {
		return 0, nil
	}
	regressions := 0
	for _, gate := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(gate), ":")
		if len(parts) != 3 {
			return 0, fmt.Errorf("bad gate %q: want suite:rowprefix:minspeedup", gate)
		}
		min, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return 0, fmt.Errorf("bad gate %q: %v", gate, err)
		}
		s, ok := curByID[parts[0]]
		if !ok {
			regressions++
			warn("gated suite %s missing from the current run",
				"REGRESSION gated suite %s: missing from the current run", parts[0])
			continue
		}
		col := -1
		for i, h := range s.Header {
			if h == "speedup" {
				col = i
			}
		}
		if col < 0 {
			return 0, fmt.Errorf("gate %q: suite %s has no speedup column", gate, parts[0])
		}
		matched := false
		for _, row := range s.Rows {
			if len(row) <= col || !strings.HasPrefix(row[0], parts[1]) {
				continue
			}
			matched = true
			got, err := strconv.ParseFloat(strings.TrimSuffix(row[col], "x"), 64)
			if err != nil {
				return 0, fmt.Errorf("gate %q: row %s: unparseable speedup %q", gate, row[0], row[col])
			}
			if got < min {
				regressions++
				warn("%s row %s speedup %.2fx under the %.2fx floor",
					"REGRESSION %s row %s: speedup %.2fx under the %.2fx floor",
					parts[0], row[0], got, min)
			}
		}
		if !matched {
			regressions++
			warn("gate %s matched no %s rows in suite %s",
				"REGRESSION gate %s: matched no %s rows in suite %s", gate, parts[1], parts[0])
		}
	}
	return regressions, nil
}
