// Command benchcheck compares a fresh cmd/bench -json record against the
// committed baseline (BENCH_baseline.json) and reports per-experiment
// regressions: a suite that stopped passing, disappeared from the run, or
// slowed down past the tolerance factor. Wall-clock on shared CI runners is
// noisy, so the default tolerance is generous (3x) and the CI job that runs
// this check is advisory (continue-on-error) — the annotations surface the
// trend without blocking a merge on a noisy neighbor.
//
// Usage:
//
//	benchcheck [-baseline BENCH_baseline.json] [-tol 3.0] current.json
//
// Under GitHub Actions (GITHUB_ACTIONS=true) regressions are emitted as
// ::warning workflow annotations; elsewhere as plain lines. Exit status: 0
// when every suite is within tolerance, 1 on any regression, 2 on usage or
// read errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"algrec/internal/expt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, os.Getenv("GITHUB_ACTIONS") == "true"))
}

func run(args []string, stdout, stderr io.Writer, gh bool) int {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseline := fs.String("baseline", "BENCH_baseline.json", "committed baseline record")
	tol := fs.Float64("tol", 3.0, "wall-clock slowdown factor that counts as a regression")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: benchcheck [-baseline path] [-tol factor] current.json")
		return 2
	}
	base, err := expt.LoadRecord(*baseline)
	if err != nil {
		fmt.Fprintln(stderr, "benchcheck:", err)
		return 2
	}
	cur, err := expt.LoadRecord(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchcheck:", err)
		return 2
	}
	if base.Scale != cur.Scale {
		fmt.Fprintf(stderr, "benchcheck: scale mismatch: baseline ran -scale %d, current -scale %d\n", base.Scale, cur.Scale)
		return 2
	}

	warn := func(format, plain string, a ...any) {
		if gh {
			fmt.Fprintf(stdout, "::warning title=bench regression::"+format+"\n", a...)
		} else {
			fmt.Fprintf(stdout, plain+"\n", a...)
		}
	}
	curByID := map[string]expt.RecordSuite{}
	for _, s := range cur.Suites {
		curByID[s.ID] = s
	}
	regressions := 0
	for _, b := range base.Suites {
		c, ok := curByID[b.ID]
		switch {
		case !ok:
			regressions++
			warn("%s (%s) missing from the current run",
				"REGRESSION %s (%s): missing from the current run", b.ID, b.Title)
		case b.OK && !c.OK:
			regressions++
			warn("%s (%s) stopped passing",
				"REGRESSION %s (%s): stopped passing", b.ID, b.Title)
		case b.WallNS > 0 && float64(c.WallNS) > *tol*float64(b.WallNS):
			regressions++
			ratio := float64(c.WallNS) / float64(b.WallNS)
			warn("%s (%s) wall %.1fx baseline (%v -> %v)",
				"REGRESSION %s (%s): wall %.1fx baseline (%v -> %v)",
				b.ID, b.Title, ratio,
				time.Duration(b.WallNS).Round(time.Millisecond),
				time.Duration(c.WallNS).Round(time.Millisecond))
		}
	}
	if regressions > 0 {
		fmt.Fprintf(stdout, "benchcheck: %d regression(s) against %s (tolerance %.1fx)\n", regressions, *baseline, *tol)
		return 1
	}
	fmt.Fprintf(stdout, "benchcheck: %d suites within %.1fx of %s\n", len(base.Suites), *tol, *baseline)
	return 0
}
