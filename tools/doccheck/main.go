// Command doccheck enforces the repository's documentation floor, using only
// go/parser (no external tooling): every package must carry a package-level
// doc comment, and packages listed with -strict must additionally document
// every exported top-level declaration. `make lint` runs it across the
// module; CI fails when documentation regresses.
//
// Usage:
//
//	doccheck [-strict dir1,dir2] [root]
//
// root defaults to the current directory. Vendored, hidden and testdata
// directories are skipped, as are _test.go files (test helpers may stay
// terse).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	var strictList string
	args := os.Args[1:]
	if len(args) >= 2 && args[0] == "-strict" {
		strictList = args[1]
		args = args[2:]
	}
	root := "."
	if len(args) > 0 {
		root = args[0]
	}
	strict := map[string]bool{}
	for _, d := range strings.Split(strictList, ",") {
		if d = strings.TrimSpace(d); d != "" {
			strict[filepath.Clean(d)] = true
		}
	}

	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		rel, _ := filepath.Rel(root, path)
		problems = append(problems, checkDir(path, rel, strict[filepath.Clean(rel)])...)
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// checkDir parses the non-test Go files of one directory and reports its
// documentation problems; a directory without Go files reports none.
func checkDir(dir, rel string, strict bool) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: parse error: %v", rel, err)}
	}
	var out []string
	for _, pkg := range pkgs {
		hasDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasDoc = true
				break
			}
		}
		if !hasDoc {
			out = append(out, fmt.Sprintf("%s: package %s has no package doc comment", rel, pkg.Name))
		}
		if !strict {
			continue
		}
		for fname, f := range pkg.Files {
			for _, decl := range f.Decls {
				out = append(out, checkDecl(fset, fname, decl)...)
			}
		}
	}
	return out
}

// checkDecl reports exported top-level declarations without doc comments.
func checkDecl(fset *token.FileSet, fname string, decl ast.Decl) []string {
	at := func(p token.Pos) string { return fset.Position(p).String() }
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil {
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			return []string{fmt.Sprintf("%s: exported %s %s has no doc comment", at(d.Pos()), kind, d.Name.Name)}
		}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			var names []*ast.Ident
			var specDoc *ast.CommentGroup
			switch s := spec.(type) {
			case *ast.TypeSpec:
				names, specDoc = []*ast.Ident{s.Name}, s.Doc
			case *ast.ValueSpec:
				names, specDoc = s.Names, s.Doc
			}
			for _, n := range names {
				if n.IsExported() && d.Doc == nil && specDoc == nil {
					out = append(out, fmt.Sprintf("%s: exported %s %s has no doc comment", at(n.Pos()), d.Tok, n.Name))
				}
			}
		}
		return out
	}
	return nil
}
